//! Request counters and latency histograms with a plain-text exposition.
//!
//! Everything here is clock-free: the server measures durations (that's
//! the one place `Instant` is read, under an explicit wall-clock lint
//! annotation) and reports *microseconds* into [`Metrics::observe`].
//! Rendering is deterministic given the counter values, so the e2e test
//! can assert exact counts from the exposition text.

use std::sync::atomic::{AtomicU64, Ordering};

/// The instrumented endpoints, in exposition order.
pub const ENDPOINTS: [&str; 5] = ["influence", "seeds", "embed", "metrics", "healthz"];

/// Upper bounds (µs) of the latency histogram buckets; the last bucket is
/// +inf. Log-spaced from 50 µs to 1 s.
pub const BUCKETS_US: [u64; 12] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 100_000, 250_000, 1_000_000,
];

/// Upper bounds of the pipelined-requests depth histogram (requests
/// outstanding on one connection when a parse round finishes); the last
/// bucket is +inf. Depth 1 is a plain non-pipelined request.
pub const PIPELINE_BUCKETS: [u64; 6] = [1, 2, 4, 8, 16, 32];

#[derive(Default)]
struct EndpointStats {
    requests: AtomicU64,
    /// `BUCKETS_US.len() + 1` cumulative-style raw counts (last = +inf).
    buckets: [AtomicU64; 13],
    latency_sum_us: AtomicU64,
}

/// Server-wide counters. All methods are lock-free and callable from any
/// worker thread.
#[derive(Default)]
pub struct Metrics {
    endpoints: [EndpointStats; 5],
    responses_2xx: AtomicU64,
    responses_4xx: AtomicU64,
    responses_5xx: AtomicU64,
    shed_total: AtomicU64,
    queue_depth: AtomicU64,
    queue_depth_peak: AtomicU64,
    drained_during_shutdown: AtomicU64,
    timeout_config_failures: AtomicU64,
    wal_appends: AtomicU64,
    wal_append_failures: AtomicU64,
    wal_compactions: AtomicU64,
    wal_compaction_failures: AtomicU64,
    open_connections: AtomicU64,
    connections_total: AtomicU64,
    keepalive_reuses: AtomicU64,
    idle_timeout_closes: AtomicU64,
    header_timeout_closes: AtomicU64,
    reactor_wakeups: AtomicU64,
    /// `PIPELINE_BUCKETS.len() + 1` raw counts (last = +inf).
    pipeline_depth: [AtomicU64; 7],
}

/// Index into [`ENDPOINTS`] for a request path, if instrumented.
pub fn endpoint_index(path: &str) -> Option<usize> {
    match path {
        "/v1/influence" => Some(0),
        "/v1/seeds" => Some(1),
        "/v1/embed" => Some(2),
        "/metrics" => Some(3),
        "/healthz" => Some(4),
        _ => None,
    }
}

impl Metrics {
    /// Fresh, all-zero counters.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Record one completed request against endpoint `ep` (an
    /// [`endpoint_index`]) with the given latency and response status.
    pub fn observe(&self, ep: usize, latency_us: u64, status: u16) {
        let s = &self.endpoints[ep];
        s.requests.fetch_add(1, Ordering::Relaxed);
        s.latency_sum_us.fetch_add(latency_us, Ordering::Relaxed);
        let bucket = BUCKETS_US
            .iter()
            .position(|&ub| latency_us <= ub)
            .unwrap_or(BUCKETS_US.len());
        s.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.observe_status(status);
    }

    /// Record a response status class without an endpoint attribution
    /// (unroutable paths, shed requests).
    pub fn observe_status(&self, status: u16) {
        let class = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
    }

    /// A request was rejected to protect latency (queue full or deadline
    /// exceeded while queued).
    pub fn shed(&self) {
        self.shed_total.fetch_add(1, Ordering::Relaxed);
    }

    /// Accept queue grew by one.
    pub fn queue_push(&self) {
        let d = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_depth_peak.fetch_max(d, Ordering::Relaxed);
    }

    /// Accept queue shrank by one.
    pub fn queue_pop(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// A queued request was completed after shutdown began.
    pub fn drained(&self) {
        self.drained_during_shutdown.fetch_add(1, Ordering::Relaxed);
    }

    /// Configuring a socket read/write timeout failed; the connection was
    /// closed rather than served without a deadline.
    pub fn timeout_config_failure(&self) {
        self.timeout_config_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Timeout-configuration failures so far.
    pub fn timeout_config_failures(&self) -> u64 {
        self.timeout_config_failures.load(Ordering::Relaxed)
    }

    /// A budget charge was journaled durably.
    pub fn wal_append(&self) {
        self.wal_appends.fetch_add(1, Ordering::Relaxed);
    }

    /// A journal append failed; the request was refused with `500` (the
    /// in-memory charge stands — overcharge-safe).
    pub fn wal_append_failure(&self) {
        self.wal_append_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Successful journal appends so far.
    pub fn wal_appends(&self) -> u64 {
        self.wal_appends.load(Ordering::Relaxed)
    }

    /// Failed journal appends so far.
    pub fn wal_append_failures(&self) -> u64 {
        self.wal_append_failures.load(Ordering::Relaxed)
    }

    /// A snapshot compaction completed (bundle replaced, journal reset).
    pub fn wal_compaction(&self) {
        self.wal_compactions.fetch_add(1, Ordering::Relaxed);
    }

    /// A snapshot compaction failed (journal left in place — safe, just
    /// uncompacted).
    pub fn wal_compaction_failure(&self) {
        self.wal_compaction_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Completed compactions so far.
    pub fn wal_compactions(&self) -> u64 {
        self.wal_compactions.load(Ordering::Relaxed)
    }

    /// A connection was accepted (gauge up, lifetime counter up).
    pub fn conn_opened(&self) {
        self.open_connections.fetch_add(1, Ordering::Relaxed);
        self.connections_total.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection was closed (gauge down).
    pub fn conn_closed(&self) {
        self.open_connections.fetch_sub(1, Ordering::Relaxed);
    }

    /// Connections currently open (reactor front end).
    pub fn open_connections(&self) -> u64 {
        self.open_connections.load(Ordering::Relaxed)
    }

    /// A second-or-later request arrived on a kept-alive connection.
    pub fn keepalive_reuse(&self) {
        self.keepalive_reuses.fetch_add(1, Ordering::Relaxed);
    }

    /// Keep-alive reuses so far.
    pub fn keepalive_reuses(&self) -> u64 {
        self.keepalive_reuses.load(Ordering::Relaxed)
    }

    /// An idle kept-alive connection was closed by the timer wheel.
    pub fn idle_timeout_close(&self) {
        self.idle_timeout_closes.fetch_add(1, Ordering::Relaxed);
    }

    /// Idle-timeout closes so far.
    pub fn idle_timeout_closes(&self) -> u64 {
        self.idle_timeout_closes.load(Ordering::Relaxed)
    }

    /// A connection with a half-sent request was closed by the timer
    /// wheel (slowloris defense).
    pub fn header_timeout_close(&self) {
        self.header_timeout_closes.fetch_add(1, Ordering::Relaxed);
    }

    /// Header-read-timeout closes so far.
    pub fn header_timeout_closes(&self) -> u64 {
        self.header_timeout_closes.load(Ordering::Relaxed)
    }

    /// The reactor returned from one poll wait (readiness or timer tick).
    pub fn reactor_wakeup(&self) {
        self.reactor_wakeups.fetch_add(1, Ordering::Relaxed);
    }

    /// Record the pipelined-request depth one parse round left
    /// outstanding on a connection.
    pub fn observe_pipeline_depth(&self, depth: u64) {
        let bucket = PIPELINE_BUCKETS
            .iter()
            .position(|&ub| depth <= ub)
            .unwrap_or(PIPELINE_BUCKETS.len());
        self.pipeline_depth[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Total requests observed across endpoints.
    pub fn total_requests(&self) -> u64 {
        self.endpoints
            .iter()
            .map(|e| e.requests.load(Ordering::Relaxed))
            .sum()
    }

    /// Requests completed after shutdown began (drain telemetry).
    pub fn drained_count(&self) -> u64 {
        self.drained_during_shutdown.load(Ordering::Relaxed)
    }

    /// Plain-text exposition (Prometheus-style: `name{labels} value`).
    /// The spread cache's hit/miss counters and the batcher's
    /// `(forward passes, requests served through them)` totals live in
    /// those components; the caller passes their current values so the
    /// exposition is one consistent snapshot.
    pub fn render(
        &self,
        cache_hits: u64,
        cache_misses: u64,
        cache_len: usize,
        batch_passes: u64,
        batch_served: u64,
    ) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("# privim-serve metrics exposition v1\n");
        for (i, name) in ENDPOINTS.iter().enumerate() {
            let s = &self.endpoints[i];
            push_line(
                &mut out,
                &format!("privim_requests_total{{endpoint=\"{name}\"}}"),
                s.requests.load(Ordering::Relaxed),
            );
        }
        for (i, name) in ENDPOINTS.iter().enumerate() {
            let s = &self.endpoints[i];
            let mut cumulative = 0u64;
            for (b, ub) in BUCKETS_US.iter().enumerate() {
                cumulative += s.buckets[b].load(Ordering::Relaxed);
                push_line(
                    &mut out,
                    &format!("privim_latency_us_bucket{{endpoint=\"{name}\",le=\"{ub}\"}}"),
                    cumulative,
                );
            }
            cumulative += s.buckets[BUCKETS_US.len()].load(Ordering::Relaxed);
            push_line(
                &mut out,
                &format!("privim_latency_us_bucket{{endpoint=\"{name}\",le=\"+Inf\"}}"),
                cumulative,
            );
            push_line(
                &mut out,
                &format!("privim_latency_us_sum{{endpoint=\"{name}\"}}"),
                s.latency_sum_us.load(Ordering::Relaxed),
            );
        }
        push_line(&mut out, "privim_responses_total{class=\"2xx\"}", self.responses_2xx.load(Ordering::Relaxed));
        push_line(&mut out, "privim_responses_total{class=\"4xx\"}", self.responses_4xx.load(Ordering::Relaxed));
        push_line(&mut out, "privim_responses_total{class=\"5xx\"}", self.responses_5xx.load(Ordering::Relaxed));
        push_line(&mut out, "privim_shed_total", self.shed_total.load(Ordering::Relaxed));
        push_line(&mut out, "privim_queue_depth", self.queue_depth.load(Ordering::Relaxed));
        push_line(&mut out, "privim_queue_depth_peak", self.queue_depth_peak.load(Ordering::Relaxed));
        push_line(&mut out, "privim_batch_forward_passes_total", batch_passes);
        push_line(&mut out, "privim_batch_batched_requests_total", batch_served);
        push_line(&mut out, "privim_cache_hits_total", cache_hits);
        push_line(&mut out, "privim_cache_misses_total", cache_misses);
        push_line(&mut out, "privim_cache_entries", cache_len as u64);
        push_line(&mut out, "privim_drained_during_shutdown_total", self.drained_during_shutdown.load(Ordering::Relaxed));
        push_line(&mut out, "privim_timeout_config_failures_total", self.timeout_config_failures.load(Ordering::Relaxed));
        push_line(&mut out, "privim_wal_appends_total", self.wal_appends.load(Ordering::Relaxed));
        push_line(&mut out, "privim_wal_append_failures_total", self.wal_append_failures.load(Ordering::Relaxed));
        push_line(&mut out, "privim_wal_compactions_total", self.wal_compactions.load(Ordering::Relaxed));
        push_line(&mut out, "privim_wal_compaction_failures_total", self.wal_compaction_failures.load(Ordering::Relaxed));
        push_line(&mut out, "privim_open_connections", self.open_connections.load(Ordering::Relaxed));
        push_line(&mut out, "privim_connections_total", self.connections_total.load(Ordering::Relaxed));
        push_line(&mut out, "privim_keepalive_reuses_total", self.keepalive_reuses.load(Ordering::Relaxed));
        push_line(&mut out, "privim_idle_timeout_closes_total", self.idle_timeout_closes.load(Ordering::Relaxed));
        push_line(&mut out, "privim_header_timeout_closes_total", self.header_timeout_closes.load(Ordering::Relaxed));
        push_line(&mut out, "privim_reactor_wakeups_total", self.reactor_wakeups.load(Ordering::Relaxed));
        let mut cumulative = 0u64;
        for (b, ub) in PIPELINE_BUCKETS.iter().enumerate() {
            cumulative += self.pipeline_depth[b].load(Ordering::Relaxed);
            push_line(
                &mut out,
                &format!("privim_pipeline_depth_bucket{{le=\"{ub}\"}}"),
                cumulative,
            );
        }
        cumulative += self.pipeline_depth[PIPELINE_BUCKETS.len()].load(Ordering::Relaxed);
        push_line(&mut out, "privim_pipeline_depth_bucket{le=\"+Inf\"}", cumulative);
        out
    }
}

fn push_line(out: &mut String, name: &str, value: u64) {
    out.push_str(name);
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

fn push_gauge(out: &mut String, name: &str, value: f64) {
    // f64 Display is shortest-roundtrip, so gauge lines are deterministic
    // given the value's bits.
    out.push_str(name);
    out.push(' ');
    out.push_str(&value.to_string());
    out.push('\n');
}

/// Append the per-tenant budget-ledger section to an exposition. Entries
/// are `(tenant, queries, ε spent, ε remaining)` in canonical tenant
/// order ([`crate::ledger::TenantLedger::snapshot`]); the caller passes a
/// single snapshot so the section is internally consistent.
pub fn render_ledger_section(
    out: &mut String,
    epsilon_budget: f64,
    entries: &[(String, u64, f64, f64)],
    admitted_total: u64,
    denied_total: u64,
) {
    push_gauge(out, "privim_budget_epsilon_limit", epsilon_budget);
    push_line(out, "privim_budget_admitted_total", admitted_total);
    push_line(out, "privim_budget_denied_total", denied_total);
    for (tenant, queries, spent, remaining) in entries {
        push_line(
            out,
            &format!("privim_tenant_queries_total{{tenant=\"{tenant}\"}}"),
            *queries,
        );
        push_gauge(
            out,
            &format!("privim_tenant_epsilon_spent{{tenant=\"{tenant}\"}}"),
            *spent,
        );
        push_gauge(
            out,
            &format!("privim_tenant_epsilon_remaining{{tenant=\"{tenant}\"}}"),
            *remaining,
        );
    }
}

/// Pull a counter value back out of exposition text (test + bench helper).
pub fn parse_counter(exposition: &str, name: &str) -> Option<u64> {
    exposition.lines().find_map(|l| {
        let rest = l.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?;
        rest.trim().parse().ok()
    })
}

/// Pull a float gauge back out of exposition text.
pub fn parse_gauge(exposition: &str, name: &str) -> Option<f64> {
    exposition.lines().find_map(|l| {
        let rest = l.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?;
        rest.trim().parse().ok()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_counts_and_buckets() {
        let m = Metrics::new();
        m.observe(0, 75, 200); // influence, 75 µs -> le=100
        m.observe(0, 75, 200);
        m.observe(2, 2_000_000, 200); // embed, 2 s -> +Inf
        let text = m.render(3, 1, 2, 0, 0);
        assert_eq!(
            parse_counter(&text, "privim_requests_total{endpoint=\"influence\"}"),
            Some(2)
        );
        assert_eq!(
            parse_counter(&text, "privim_latency_us_bucket{endpoint=\"influence\",le=\"100\"}"),
            Some(2)
        );
        assert_eq!(
            parse_counter(&text, "privim_latency_us_bucket{endpoint=\"influence\",le=\"50\"}"),
            Some(0)
        );
        assert_eq!(
            parse_counter(&text, "privim_latency_us_bucket{endpoint=\"embed\",le=\"+Inf\"}"),
            Some(1)
        );
        assert_eq!(
            parse_counter(&text, "privim_latency_us_bucket{endpoint=\"embed\",le=\"1000000\"}"),
            Some(0)
        );
        assert_eq!(parse_counter(&text, "privim_responses_total{class=\"2xx\"}"), Some(3));
        assert_eq!(parse_counter(&text, "privim_cache_hits_total"), Some(3));
        assert_eq!(parse_counter(&text, "privim_cache_misses_total"), Some(1));
        assert_eq!(parse_counter(&text, "privim_cache_entries"), Some(2));
    }

    #[test]
    fn queue_and_batch_gauges() {
        let m = Metrics::new();
        m.queue_push();
        m.queue_push();
        m.queue_pop();
        m.shed();
        let text = m.render(0, 0, 0, 1, 4);
        assert_eq!(parse_counter(&text, "privim_queue_depth"), Some(1));
        assert_eq!(parse_counter(&text, "privim_queue_depth_peak"), Some(2));
        assert_eq!(parse_counter(&text, "privim_batch_forward_passes_total"), Some(1));
        assert_eq!(parse_counter(&text, "privim_batch_batched_requests_total"), Some(4));
        assert_eq!(parse_counter(&text, "privim_shed_total"), Some(1));
    }

    #[test]
    fn durability_counters_render() {
        let m = Metrics::new();
        m.timeout_config_failure();
        m.wal_append();
        m.wal_append();
        m.wal_append_failure();
        m.wal_compaction();
        m.wal_compaction_failure();
        let text = m.render(0, 0, 0, 0, 0);
        assert_eq!(parse_counter(&text, "privim_timeout_config_failures_total"), Some(1));
        assert_eq!(parse_counter(&text, "privim_wal_appends_total"), Some(2));
        assert_eq!(parse_counter(&text, "privim_wal_append_failures_total"), Some(1));
        assert_eq!(parse_counter(&text, "privim_wal_compactions_total"), Some(1));
        assert_eq!(parse_counter(&text, "privim_wal_compaction_failures_total"), Some(1));
        assert_eq!(m.wal_appends(), 2);
        assert_eq!(m.wal_append_failures(), 1);
        assert_eq!(m.wal_compactions(), 1);
        assert_eq!(m.timeout_config_failures(), 1);
    }

    #[test]
    fn connection_counters_render() {
        let m = Metrics::new();
        m.conn_opened();
        m.conn_opened();
        m.conn_closed();
        m.keepalive_reuse();
        m.keepalive_reuse();
        m.keepalive_reuse();
        m.idle_timeout_close();
        m.header_timeout_close();
        m.reactor_wakeup();
        m.observe_pipeline_depth(1);
        m.observe_pipeline_depth(3); // -> le=4
        m.observe_pipeline_depth(100); // -> +Inf
        let text = m.render(0, 0, 0, 0, 0);
        assert_eq!(parse_counter(&text, "privim_open_connections"), Some(1));
        assert_eq!(parse_counter(&text, "privim_connections_total"), Some(2));
        assert_eq!(parse_counter(&text, "privim_keepalive_reuses_total"), Some(3));
        assert_eq!(parse_counter(&text, "privim_idle_timeout_closes_total"), Some(1));
        assert_eq!(parse_counter(&text, "privim_header_timeout_closes_total"), Some(1));
        assert_eq!(parse_counter(&text, "privim_reactor_wakeups_total"), Some(1));
        assert_eq!(parse_counter(&text, "privim_pipeline_depth_bucket{le=\"1\"}"), Some(1));
        assert_eq!(parse_counter(&text, "privim_pipeline_depth_bucket{le=\"2\"}"), Some(1));
        assert_eq!(parse_counter(&text, "privim_pipeline_depth_bucket{le=\"4\"}"), Some(2));
        assert_eq!(parse_counter(&text, "privim_pipeline_depth_bucket{le=\"+Inf\"}"), Some(3));
        assert_eq!(m.open_connections(), 1);
        assert_eq!(m.keepalive_reuses(), 3);
        assert_eq!(m.idle_timeout_closes(), 1);
        assert_eq!(m.header_timeout_closes(), 1);
    }

    #[test]
    fn ledger_section_renders_and_parses_back() {
        let mut out = String::new();
        let entries = vec![
            ("acme".to_string(), 12u64, 0.75, 0.25),
            ("zephyr".to_string(), 1u64, 0.0625, 0.9375),
        ];
        render_ledger_section(&mut out, 1.0, &entries, 13, 4);
        assert_eq!(parse_gauge(&out, "privim_budget_epsilon_limit"), Some(1.0));
        assert_eq!(parse_counter(&out, "privim_budget_admitted_total"), Some(13));
        assert_eq!(parse_counter(&out, "privim_budget_denied_total"), Some(4));
        assert_eq!(
            parse_counter(&out, "privim_tenant_queries_total{tenant=\"acme\"}"),
            Some(12)
        );
        assert_eq!(
            parse_gauge(&out, "privim_tenant_epsilon_spent{tenant=\"acme\"}"),
            Some(0.75)
        );
        assert_eq!(
            parse_gauge(&out, "privim_tenant_epsilon_remaining{tenant=\"zephyr\"}"),
            Some(0.9375)
        );
        // exact round-trip of a non-terminating decimal
        let mut out2 = String::new();
        render_ledger_section(&mut out2, 0.1 + 0.2, &[], 0, 0);
        assert_eq!(
            parse_gauge(&out2, "privim_budget_epsilon_limit").map(f64::to_bits),
            Some((0.1f64 + 0.2).to_bits())
        );
    }

    #[test]
    fn endpoint_routing_table() {
        assert_eq!(endpoint_index("/v1/influence"), Some(0));
        assert_eq!(endpoint_index("/v1/seeds"), Some(1));
        assert_eq!(endpoint_index("/v1/embed"), Some(2));
        assert_eq!(endpoint_index("/metrics"), Some(3));
        assert_eq!(endpoint_index("/healthz"), Some(4));
        assert_eq!(endpoint_index("/nope"), None);
    }
}

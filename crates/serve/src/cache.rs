//! Sharded LRU cache for spread estimates.
//!
//! Keys are the *exact* canonical request bytes; the FNV-1a hash is used
//! only to pick a shard, never to identify an entry — so a hash collision
//! costs a little contention, not a wrong answer. Each shard is an
//! independent mutex, keeping `/v1/influence` lookups from serialising
//! behind one lock under concurrent load.
//!
//! Internally a shard keeps two `BTreeMap` indexes (key → entry and
//! recency stamp → key) so both lookup and LRU eviction are `O(log n)`
//! with fully deterministic iteration order (no `HashMap` — the
//! workspace determinism lint applies to this crate too).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// 64-bit FNV-1a — the shard selector. Stable across runs and platforms.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Shard<V> {
    cap: usize,
    /// Monotone recency counter; the entry with the smallest stamp is
    /// the least recently used.
    tick: u64,
    by_key: BTreeMap<Vec<u8>, (u64, V)>,
    by_stamp: BTreeMap<u64, Vec<u8>>,
}

impl<V: Clone> Shard<V> {
    fn touch(&mut self, key: &[u8]) -> Option<V> {
        let (old_stamp, value) = match self.by_key.get(key) {
            Some((s, v)) => (*s, v.clone()),
            None => return None,
        };
        self.by_stamp.remove(&old_stamp);
        self.tick += 1;
        let stamp = self.tick;
        self.by_stamp.insert(stamp, key.to_vec());
        if let Some(entry) = self.by_key.get_mut(key) {
            entry.0 = stamp;
        }
        Some(value)
    }

    fn insert(&mut self, key: Vec<u8>, value: V) {
        if self.cap == 0 {
            return;
        }
        if let Some((old_stamp, _)) = self.by_key.get(&key) {
            let old_stamp = *old_stamp;
            self.by_stamp.remove(&old_stamp);
        }
        self.tick += 1;
        let stamp = self.tick;
        self.by_stamp.insert(stamp, key.clone());
        self.by_key.insert(key, (stamp, value));
        while self.by_key.len() > self.cap {
            let Some((&oldest, _)) = self.by_stamp.iter().next() else {
                break;
            };
            if let Some(victim) = self.by_stamp.remove(&oldest) {
                self.by_key.remove(&victim);
            }
        }
    }
}

/// A sharded LRU cache with atomic hit/miss counters (exposed on
/// `/metrics`). Thread-safe; values are returned by clone.
pub struct ShardedLru<V> {
    shards: Vec<Mutex<Shard<V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // privim-lint: allow(panic, reason = "a poisoned shard lock means another worker panicked mid-insert; propagating the panic is the only sound recovery")
    m.lock().unwrap()
}

impl<V: Clone> ShardedLru<V> {
    /// `shards` independent LRUs of `cap_per_shard` entries each. Shard
    /// count is clamped to ≥ 1; a zero capacity disables caching (every
    /// lookup misses) without disabling the counters.
    pub fn new(shards: usize, cap_per_shard: usize) -> Self {
        let shards = shards.max(1);
        ShardedLru {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        cap: cap_per_shard,
                        tick: 0,
                        by_key: BTreeMap::new(),
                        by_stamp: BTreeMap::new(),
                    })
                })
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &[u8]) -> &Mutex<Shard<V>> {
        let idx = (fnv1a64(key) % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    /// Look up `key`, bumping its recency. Counts a hit or a miss.
    pub fn get(&self, key: &[u8]) -> Option<V> {
        let found = lock(self.shard(key)).touch(key);
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or refresh) `key`, evicting the shard's LRU entries if the
    /// shard is over capacity.
    pub fn put(&self, key: Vec<u8>, value: V) {
        lock(self.shard(&key)).insert(key, value);
    }

    /// Total hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total misses since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Total entries across shards (O(shards)).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(s).by_key.len()).sum()
    }

    /// True if no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_roundtrip_and_counters() {
        let c: ShardedLru<f64> = ShardedLru::new(4, 8);
        assert_eq!(c.get(b"a"), None);
        c.put(b"a".to_vec(), 1.5);
        assert_eq!(c.get(b"a"), Some(1.5));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn evicts_least_recently_used_per_shard() {
        // One shard makes the eviction order fully observable.
        let c: ShardedLru<u32> = ShardedLru::new(1, 2);
        c.put(b"a".to_vec(), 1);
        c.put(b"b".to_vec(), 2);
        // touch "a" so "b" becomes LRU
        assert_eq!(c.get(b"a"), Some(1));
        c.put(b"c".to_vec(), 3);
        assert_eq!(c.get(b"b"), None, "LRU entry must be evicted");
        assert_eq!(c.get(b"a"), Some(1));
        assert_eq!(c.get(b"c"), Some(3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_not_duplicates() {
        let c: ShardedLru<u32> = ShardedLru::new(1, 2);
        c.put(b"a".to_vec(), 1);
        c.put(b"a".to_vec(), 9);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(b"a"), Some(9));
    }

    #[test]
    fn exact_key_bytes_identify_entries() {
        // Two distinct keys must never alias, whatever their hashes.
        let c: ShardedLru<u32> = ShardedLru::new(2, 8);
        c.put(b"k1".to_vec(), 1);
        c.put(b"k2".to_vec(), 2);
        assert_eq!(c.get(b"k1"), Some(1));
        assert_eq!(c.get(b"k2"), Some(2));
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let c: ShardedLru<u32> = ShardedLru::new(2, 0);
        c.put(b"a".to_vec(), 1);
        assert_eq!(c.get(b"a"), None);
        assert!(c.is_empty());
    }

    #[test]
    fn fingerprint_change_never_serves_a_stale_entry() {
        // Regression: the influence cache key leads with the graph
        // fingerprint, so an entry computed against one graph can never
        // answer a query against another — even if a cache instance
        // outlives a graph swap.
        let c: ShardedLru<f64> = ShardedLru::new(4, 16);
        let old_fp = 0xdead_beef_dead_beefu64;
        let new_fp = 0xfeed_face_feed_faceu64;
        let seeds: Vec<u32> = vec![1, 3, 9];
        let key_old = crate::server::influence_cache_key(old_fp, &seeds, 32, None, 5);
        let key_new = crate::server::influence_cache_key(new_fp, &seeds, 32, None, 5);
        assert_ne!(key_old, key_new, "identical queries on different graphs must not collide");
        c.put(key_old.clone(), 41.5);
        assert_eq!(c.get(&key_new), None, "stale entry served across a fingerprint change");
        c.put(key_new.clone(), 7.25);
        assert_eq!(c.get(&key_old), Some(41.5));
        assert_eq!(c.get(&key_new), Some(7.25));
    }

    #[test]
    fn eviction_order_is_deterministic_under_concurrent_hits() {
        // Shards are independent mutexes and every shard's recency stamps
        // are driven only by the operations that reach it. With each
        // thread confined to its own shard, the surviving entries and the
        // hit/miss totals are identical on every run, whatever the OS
        // scheduler does.
        use std::sync::Arc;
        let shards = 4usize;
        // Pre-assign keys to shards so each worker stays on its own shard.
        let mut per_shard: Vec<Vec<Vec<u8>>> = vec![Vec::new(); shards];
        let mut i = 0u64;
        while per_shard.iter().any(|keys| keys.len() < 6) {
            let key = i.to_le_bytes().to_vec();
            let s = (fnv1a64(&key) % shards as u64) as usize;
            if per_shard[s].len() < 6 {
                per_shard[s].push(key);
            }
            i += 1;
        }
        let run = || {
            let c: Arc<ShardedLru<u64>> = Arc::new(ShardedLru::new(shards, 2));
            let threads: Vec<_> = per_shard
                .iter()
                .cloned()
                .map(|keys| {
                    let c = Arc::clone(&c);
                    std::thread::spawn(move || {
                        // Fixed per-shard op sequence: inserts past
                        // capacity interleaved with recency-bumping hits.
                        for k in &keys[..4] {
                            c.put(k.clone(), 1);
                        }
                        let _ = c.get(&keys[2]); // keys[3] becomes LRU
                        for k in &keys[4..] {
                            c.put(k.clone(), 2);
                        }
                    })
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
            let survivors: Vec<Vec<bool>> = per_shard
                .iter()
                .map(|keys| keys.iter().map(|k| c.get(k).is_some()).collect())
                .collect();
            (survivors, c.hits(), c.misses())
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "concurrent eviction must be schedule-independent");
        // and each shard holds exactly its capacity at the end
        for (s, survived) in a.0.iter().enumerate() {
            assert_eq!(
                survived.iter().filter(|&&x| x).count(),
                2,
                "shard {s} must end at capacity"
            );
        }
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned so cache shard assignment (and thus /metrics counters
        // under a fixed workload) never drifts across platforms.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}

#![warn(missing_docs)]
//! # privim-serve
//!
//! An online inference and seed-set query server over a trained PrivIM
//! model — the deployment half of the pipeline: once DP-SGD has produced
//! a releasable `(model, ε, δ, σ, steps)` artifact, this crate packs it
//! into a checksummed bundle together with the serving graph and answers
//! queries over plain HTTP/1.1 on `std::net` (the workspace's
//! zero-external-dependency policy extends to the server: no tokio, no
//! hyper, no serde).
//!
//! ## Endpoints
//!
//! | route | what it does |
//! |---|---|
//! | `POST /v1/influence` | spread of a seed set (Monte-Carlo IC), LRU-cached |
//! | `POST /v1/seeds` | top-`k` seeds via resumable CELF (cached pick order) |
//! | `POST /v1/embed` | GNN scores for requested nodes, micro-batched |
//! | `GET /metrics` | plain-text exposition: counters, latency histograms, per-tenant budgets |
//! | `GET /healthz` | liveness |
//!
//! Query endpoints are *budget-aware* when the bundle carries a ledger
//! ([`ledger::TenantLedger`]): requests with an `X-Privim-Tenant` header
//! are charged one Gaussian release per query against that tenant's RDP
//! budget, and an exhausted tenant gets `429 Too Many Requests` with a
//! `Retry-After` header — before any inference work happens.
//!
//! ## Production behaviours
//!
//! * **Micro-batching** ([`batch::Batcher`]): concurrent `/v1/embed`
//!   requests coalesce into one full-graph forward pass through the
//!   worker-pool-backed tensor kernels; each request then reads its rows.
//! * **Caching** ([`cache::ShardedLru`]): spread estimates are cached in
//!   a sharded LRU keyed by the *exact* canonical request bytes (the hash
//!   only picks the shard, so a collision can never serve a wrong value),
//!   and `/v1/seeds` reuses one [`privim_im::LazyGreedy`] across requests
//!   — greedy prefix stability makes any `k ≤ computed` free.
//! * **Readiness-loop front end** (the `conn` + unix-only `reactor`
//!   modules): an epoll/poll reactor drives nonblocking sockets with
//!   HTTP/1.1 keep-alive and pipelining, a per-connection state machine,
//!   and a coarse timer wheel for idle/header-read timeouts (slowloris
//!   defense). Request execution stays on the worker pool, so response
//!   bytes are identical to the thread-per-connection front end
//!   ([`server::FrontEnd::Threaded`], still available for comparison and
//!   as the non-unix fallback).
//! * **Load shedding** ([`server`]): a bounded accept queue; overflow and
//!   requests whose queue wait exceeds the deadline get `503` instead of
//!   growing latency without bound.
//! * **Graceful drain**: shutdown stops accepting, then completes every
//!   in-flight and queued request before workers exit.
//! * **Versioned bundles** ([`bundle`]): format tag + version + CRC-32 +
//!   graph fingerprint, so a serving process can never silently run a
//!   truncated model or mismatched graph.
//! * **Crash durability** ([`wal`]): every granted budget charge is
//!   journaled (length-prefixed, CRC-32'd, fsync'd) *before* the client
//!   sees a 2xx; startup replays the journal over the bundle's ledger
//!   with never-undercharge semantics, and periodic compaction folds it
//!   into an atomically-replaced bundle snapshot.
//!
//! Determinism note: response payloads are bit-identical to direct
//! library calls (the e2e test pins this) — batching and caching change
//! *when* work happens, never *what* is computed.

pub mod batch;
pub mod bundle;
pub mod cache;
pub(crate) mod conn;
pub mod http;
pub mod ledger;
pub mod metrics;
#[cfg(unix)]
pub(crate) mod reactor;
pub mod server;
pub mod wal;

pub use bundle::{
    graph_fingerprint, Bundle, PrivacyStatement, BUNDLE_FORMAT, BUNDLE_VERSION,
    MIN_BUNDLE_VERSION,
};
pub use cache::ShardedLru;
pub use ledger::{Admission, LedgerConfig, LedgerState, TenantLedger};
pub use metrics::Metrics;
pub use server::{influence_cache_key, start, DurabilityConfig, FrontEnd, ServeConfig, ServerHandle};
pub use wal::{FsyncPolicy, RecoveryReport, WalWriter};

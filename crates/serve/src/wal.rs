//! Crash-durable write-ahead journal for the per-tenant budget ledger.
//!
//! PR 6's ledger meters tenant spend in memory and persists it only at
//! pack time — a kill-9 between pack and crash silently refunds every
//! charge taken while serving, breaking budget monotonicity (the one
//! invariant a DP system must never break). This module closes that
//! hole: every granted admission appends a charge record here *before*
//! the client sees a success response, and startup replays the journal
//! over the bundle's ledger section.
//!
//! ## Record format
//!
//! ```text
//! record  := len:u32le  crc:u32le  payload
//! payload := tenant_len:u16le  tenant:utf8[tenant_len]  queries_after:u64le
//! ```
//!
//! `len` is the payload length; `crc` is CRC-32 over the payload bytes.
//! `queries_after` is the tenant's *absolute post-charge* admitted-query
//! count, not a delta — replay is therefore idempotent (recovered count
//! = per-tenant max over records), re-applying a journal on top of a
//! snapshot that already folded it in is a no-op, and the ε spend is
//! recomputed bit-exactly from the count alone (Gaussian RDP is linear
//! in the release count; see [`crate::ledger`]).
//!
//! ## Recovery semantics (never undercharge)
//!
//! [`replay`] scans records sequentially and is deliberately asymmetric:
//!
//! * **Torn tail** — fewer than 8 bytes left, an implausible length
//!   field, or a payload cut short: the remainder is dropped and the
//!   scan stops. Safe: under `fsync = always` an acknowledged charge is
//!   durable *before* the 2xx goes out, so a torn final record was never
//!   acknowledged to any client.
//! * **Ambiguous record** — the CRC mismatches but the payload is
//!   structurally parseable: the charge is **kept**. Recovery may
//!   overcharge a tenant; it must never undercharge one.
//! * A record whose payload cannot be parsed at all ends the scan like a
//!   torn tail — framing can no longer be trusted past it.
//!
//! Replay is a pure function of the journal bytes: same bytes →
//! bit-identical ledger, at any thread count (`tests/determinism.rs`
//! pins this).
//!
//! ## Compaction
//!
//! The server periodically folds the live ledger into a fresh bundle
//! snapshot via [`privim_rt::fsio::atomic_write_durable`] (temp file +
//! fsync + rename + directory fsync) and only then truncates the
//! journal ([`WalWriter::reset`]). If the truncation is lost to a crash,
//! the stale journal's absolute counts are ≤ the snapshot's and replay
//! max() makes re-applying them a no-op.

use privim_rt::crc::crc32;
use privim_rt::fault::{self, FaultPlan};
use privim_rt::fsio;
use privim_rt::{PrivimError, PrivimResult};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::path::Path;

use crate::ledger::LedgerState;

/// Bytes of `len + crc` framing before each payload.
const HEADER_LEN: usize = 8;
/// Tenant ids longer than this are refused at admission time.
pub const MAX_TENANT_BYTES: usize = 1024;
/// Smallest well-formed payload: 1-byte tenant.
const MIN_PAYLOAD: usize = 2 + 1 + 8;
/// Largest well-formed payload; length fields above this end the scan.
const MAX_PAYLOAD: usize = 2 + MAX_TENANT_BYTES + 8;

/// When appended records are fsync'd.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync after every record — an acknowledged charge is always
    /// durable. The server default.
    Always,
    /// Sync after every `n`-th record: bounded loss of *unacknowledged*
    /// work... except the ledger acknowledges per record, so up to `n-1`
    /// acknowledged charges can be lost to a crash. Only for
    /// deployments that accept that trade for throughput.
    EveryN(u64),
    /// Never sync explicitly; durability rides on the OS writeback.
    Never,
}

impl FsyncPolicy {
    /// Parse the CLI vocabulary: `always`, `never`, `every=N` (N ≥ 1).
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "never" => Some(FsyncPolicy::Never),
            other => {
                let n: u64 = other.strip_prefix("every=")?.parse().ok()?;
                if n >= 1 {
                    Some(FsyncPolicy::EveryN(n))
                } else {
                    None
                }
            }
        }
    }
}

/// Encode one charge record onto `buf`. The only failure is an invalid
/// tenant id (empty, oversized, or interior NUL-free UTF-8 is fine —
/// length is the only constraint beyond non-emptiness).
pub fn append_record(buf: &mut Vec<u8>, tenant: &str, queries_after: u64) -> PrivimResult<()> {
    let t = tenant.as_bytes();
    if t.is_empty() {
        return Err(PrivimError::invalid("wal record tenant id must be non-empty"));
    }
    if t.len() > MAX_TENANT_BYTES {
        return Err(PrivimError::invalid(format!(
            "wal record tenant id exceeds {MAX_TENANT_BYTES} bytes"
        )));
    }
    let len = 2 + t.len() + 8;
    let start = buf.len();
    buf.extend_from_slice(&(len as u32).to_le_bytes());
    buf.extend_from_slice(&[0u8; 4]); // crc backpatched below
    buf.extend_from_slice(&(t.len() as u16).to_le_bytes());
    buf.extend_from_slice(t);
    buf.extend_from_slice(&queries_after.to_le_bytes());
    let crc = crc32(&buf[start + HEADER_LEN..]);
    buf[start + 4..start + HEADER_LEN].copy_from_slice(&crc.to_le_bytes());
    Ok(())
}

fn decode_payload(payload: &[u8]) -> Option<(&str, u64)> {
    if payload.len() < MIN_PAYLOAD {
        return None;
    }
    let tenant_len = u16::from_le_bytes([payload[0], payload[1]]) as usize;
    if tenant_len == 0 || payload.len() != 2 + tenant_len + 8 {
        return None;
    }
    let tenant = std::str::from_utf8(&payload[2..2 + tenant_len]).ok()?;
    let mut q = [0u8; 8];
    q.copy_from_slice(&payload[2 + tenant_len..]);
    Some((tenant, u64::from_le_bytes(q)))
}

/// What [`replay`] saw while scanning a journal.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Records with a valid CRC that were applied.
    pub records_applied: u64,
    /// CRC-mismatched but parseable records, kept under the
    /// never-undercharge rule.
    pub ambiguous_kept: u64,
    /// Bytes dropped from the torn tail (0 for a clean journal).
    pub torn_tail_bytes: u64,
    /// Journal prefix length covered by kept records — the boundary a
    /// writer reopening this journal truncates back to.
    pub bytes_kept: u64,
}

/// Replay a journal: per-tenant max of `queries_after` over every kept
/// record, plus scan statistics. Pure function of the bytes; never
/// errors (a corrupt journal degrades to fewer applied records, in the
/// overcharge-safe direction only).
pub fn replay(bytes: &[u8]) -> (BTreeMap<String, u64>, ReplayStats) {
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut stats = ReplayStats::default();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < HEADER_LEN {
            break;
        }
        let mut len4 = [0u8; 4];
        len4.copy_from_slice(&bytes[pos..pos + 4]);
        let len = u32::from_le_bytes(len4) as usize;
        if !(MIN_PAYLOAD..=MAX_PAYLOAD).contains(&len) || remaining < HEADER_LEN + len {
            break;
        }
        let mut crc4 = [0u8; 4];
        crc4.copy_from_slice(&bytes[pos + 4..pos + HEADER_LEN]);
        let stored_crc = u32::from_le_bytes(crc4);
        let payload = &bytes[pos + HEADER_LEN..pos + HEADER_LEN + len];
        let Some((tenant, queries_after)) = decode_payload(payload) else {
            break;
        };
        if crc32(payload) == stored_crc {
            stats.records_applied += 1;
        } else {
            stats.ambiguous_kept += 1;
        }
        let entry = counts.entry(tenant.to_string()).or_insert(0);
        *entry = (*entry).max(queries_after);
        pos += HEADER_LEN + len;
        stats.bytes_kept = pos as u64;
    }
    stats.torn_tail_bytes = (bytes.len() - pos) as u64;
    (counts, stats)
}

/// What startup recovery did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a journal file existed at all.
    pub wal_present: bool,
    /// See [`ReplayStats::records_applied`].
    pub records_applied: u64,
    /// See [`ReplayStats::ambiguous_kept`].
    pub ambiguous_kept: u64,
    /// See [`ReplayStats::torn_tail_bytes`].
    pub torn_tail_bytes: u64,
    /// Tenants whose counts the journal raised above the snapshot.
    pub tenants_raised: u64,
}

/// Merge replayed journal counts into a ledger snapshot: each tenant's
/// count becomes `max(snapshot, journal)` — recovery can only raise
/// spend, never lower it.
pub fn recover_state(state: &mut LedgerState, wal_bytes: &[u8]) -> RecoveryReport {
    let (counts, stats) = replay(wal_bytes);
    let mut tenants_raised = 0u64;
    for (tenant, q) in counts {
        let current = state.tenants.get(&tenant).copied().unwrap_or(0);
        if q > current {
            state.tenants.insert(tenant, q);
            tenants_raised += 1;
        }
    }
    RecoveryReport {
        wal_present: true,
        records_applied: stats.records_applied,
        ambiguous_kept: stats.ambiguous_kept,
        torn_tail_bytes: stats.torn_tail_bytes,
        tenants_raised,
    }
}

/// [`recover_state`] from a journal file. A missing file is a clean
/// first boot, not an error.
pub fn recover_from_path(state: &mut LedgerState, path: &Path) -> PrivimResult<RecoveryReport> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(RecoveryReport::default())
        }
        Err(e) => {
            return Err(PrivimError::io(
                format!("reading wal {}", path.display()),
                e,
            ))
        }
    };
    Ok(recover_state(state, &bytes))
}

/// The append handle a serving process holds on its journal.
///
/// Opening scans any existing journal and truncates back to the last
/// kept-record boundary, so a torn tail left by a crash can never
/// desynchronize framing for subsequent appends. A failed append
/// likewise truncates back to the last good boundary; if even that
/// repair fails the writer poisons itself and refuses all further
/// appends — serving would otherwise continue against a journal whose
/// on-disk framing is unknown.
pub struct WalWriter {
    file: File,
    fsync: FsyncPolicy,
    plan: Option<FaultPlan>,
    /// Successful appends over this writer's lifetime (drives the
    /// `EveryN` fsync cadence and compaction triggers).
    appended: u64,
    /// Append *attempts* — the logical index fault plans key on, so a
    /// retried append after an injected failure is a fresh decision.
    attempts: u64,
    /// File length covered by intact records.
    good_len: u64,
    poisoned: bool,
}

impl WalWriter {
    /// Open (or create) the journal at `path`, honoring the process-wide
    /// `PRIVIM_FAULT` plan for I/O fault injection.
    pub fn open(path: &Path, fsync: FsyncPolicy) -> PrivimResult<WalWriter> {
        WalWriter::open_with_plan(path, fsync, fault::env_plan())
    }

    /// [`WalWriter::open`] with an explicit fault plan (tests).
    pub fn open_with_plan(
        path: &Path,
        fsync: FsyncPolicy,
        plan: Option<FaultPlan>,
    ) -> PrivimResult<WalWriter> {
        if let FsyncPolicy::EveryN(0) = fsync {
            return Err(PrivimError::invalid("fsync every=N requires N >= 1"));
        }
        let ctx = || format!("opening wal {}", path.display());
        let existing = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(PrivimError::io(ctx(), e)),
        };
        let (_, stats) = replay(&existing);
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| PrivimError::io(ctx(), e))?;
        if stats.bytes_kept < existing.len() as u64 {
            // Drop the torn tail so the next append starts on a record
            // boundary. (O_APPEND writes land at the new EOF.)
            file.set_len(stats.bytes_kept)
                .map_err(|e| PrivimError::io(ctx(), e))?;
        }
        Ok(WalWriter {
            file,
            fsync,
            plan,
            appended: 0,
            attempts: 0,
            good_len: stats.bytes_kept,
            poisoned: false,
        })
    }

    /// Append one charge record per the fsync policy. On success the
    /// record is frame-complete (and, under [`FsyncPolicy::Always`],
    /// durable) — only then may the caller acknowledge the charge to a
    /// client.
    pub fn append(&mut self, tenant: &str, queries_after: u64) -> PrivimResult<()> {
        if self.poisoned {
            return Err(PrivimError::invalid(
                "wal writer poisoned by an earlier unrepaired I/O failure",
            ));
        }
        let mut record = Vec::with_capacity(HEADER_LEN + 2 + tenant.len() + 8);
        append_record(&mut record, tenant, queries_after)?;
        let index = self.attempts;
        self.attempts += 1;
        if let Err(e) = fsio::write_all_faulty(
            &mut self.file,
            &record,
            "appending wal record",
            self.plan.as_ref(),
            index,
        ) {
            self.truncate_to_good();
            return Err(e);
        }
        let sync_due = match self.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => (self.appended + 1) % n == 0,
            FsyncPolicy::Never => false,
        };
        if sync_due {
            if let Err(e) =
                fsio::fsync_faulty(&self.file, "syncing wal", self.plan.as_ref(), index)
            {
                // The record is frame-complete in the OS cache: keeping
                // it can only overcharge after a crash (allowed), but
                // the file's durable state is unknowable after a failed
                // fsync, so no further appends.
                self.good_len += record.len() as u64;
                self.appended += 1;
                self.poisoned = true;
                return Err(e);
            }
        }
        self.good_len += record.len() as u64;
        self.appended += 1;
        if let Err(e) = fsio::crash_point(self.plan.as_ref(), index) {
            // Simulated death after a durable write: the record stays;
            // this writer acts dead.
            self.poisoned = true;
            return Err(e);
        }
        Ok(())
    }

    fn truncate_to_good(&mut self) {
        if self.file.set_len(self.good_len).is_err() {
            self.poisoned = true;
        }
    }

    /// Force an fsync regardless of policy (drain path).
    pub fn sync(&mut self) -> PrivimResult<()> {
        self.file
            .sync_data()
            .map_err(|e| PrivimError::io("syncing wal", e))
    }

    /// Truncate the journal after a durable snapshot folded it in.
    pub fn reset(&mut self) -> PrivimResult<()> {
        if self.poisoned {
            return Err(PrivimError::invalid(
                "wal writer poisoned by an earlier unrepaired I/O failure",
            ));
        }
        self.file
            .set_len(0)
            .and_then(|()| self.file.sync_data())
            .map_err(|e| PrivimError::io("truncating wal after snapshot", e))?;
        self.good_len = 0;
        Ok(())
    }

    /// Records appended by this writer (the fault-plan logical index).
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Whether the writer refuses further appends.
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::LedgerConfig;
    use privim_rt::fault::FaultPoint;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("privim-wal-unit-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn journal(records: &[(&str, u64)]) -> Vec<u8> {
        let mut buf = Vec::new();
        for &(t, q) in records {
            append_record(&mut buf, t, q).unwrap();
        }
        buf
    }

    #[test]
    fn replay_applies_max_per_tenant() {
        let buf = journal(&[("a", 1), ("b", 1), ("a", 2), ("a", 3), ("b", 2)]);
        let (counts, stats) = replay(&buf);
        assert_eq!(counts.get("a"), Some(&3));
        assert_eq!(counts.get("b"), Some(&2));
        assert_eq!(stats.records_applied, 5);
        assert_eq!(stats.ambiguous_kept, 0);
        assert_eq!(stats.torn_tail_bytes, 0);
        assert_eq!(stats.bytes_kept, buf.len() as u64);
    }

    #[test]
    fn torn_tail_is_dropped_at_every_cut() {
        let buf = journal(&[("a", 1), ("a", 2)]);
        let one = journal(&[("a", 1)]);
        for cut in 0..buf.len() {
            let (counts, stats) = replay(&buf[..cut]);
            if cut < one.len() {
                assert!(counts.is_empty(), "cut={cut}");
            } else {
                assert_eq!(counts.get("a"), Some(&1), "cut={cut}");
                assert_eq!(stats.bytes_kept, one.len() as u64);
            }
            assert_eq!(stats.torn_tail_bytes as usize, cut - stats.bytes_kept as usize);
        }
    }

    #[test]
    fn crc_mismatch_with_intact_payload_is_kept() {
        let mut buf = journal(&[("a", 4), ("b", 7)]);
        // Flip a bit in the first record's stored CRC: payload intact,
        // checksum wrong — the ambiguous-keep path.
        buf[4] ^= 0xFF;
        let (counts, stats) = replay(&buf);
        assert_eq!(counts.get("a"), Some(&4), "ambiguous charge must be kept");
        assert_eq!(counts.get("b"), Some(&7), "scan must continue past it");
        assert_eq!(stats.ambiguous_kept, 1);
        assert_eq!(stats.records_applied, 1);
    }

    #[test]
    fn unparseable_payload_ends_the_scan() {
        let mut buf = journal(&[("a", 1)]);
        // Zero the tenant-length field: the payload no longer parses, so
        // framing past it cannot be trusted.
        buf[HEADER_LEN] = 0;
        buf[HEADER_LEN + 1] = 0;
        let tail = journal(&[("b", 9)]);
        let torn = buf.len() + tail.len();
        buf.extend_from_slice(&tail);
        let (counts, stats) = replay(&buf);
        assert!(counts.is_empty());
        assert_eq!(stats.torn_tail_bytes as usize, torn);
    }

    #[test]
    fn recover_state_only_raises_counts() {
        let config = LedgerConfig {
            epsilon_budget: 4.0,
            delta: 1e-5,
            query_sigma: 8.0,
            retry_after_secs: 60,
        };
        let mut state = LedgerState::new(config);
        state.tenants.insert("a".into(), 5);
        state.tenants.insert("c".into(), 2);
        let buf = journal(&[("a", 3), ("b", 2), ("c", 6)]);
        let report = recover_state(&mut state, &buf);
        assert_eq!(state.tenants.get("a"), Some(&5), "stale journal count must not lower spend");
        assert_eq!(state.tenants.get("b"), Some(&2));
        assert_eq!(state.tenants.get("c"), Some(&6));
        assert_eq!(report.tenants_raised, 2);
        assert_eq!(report.records_applied, 3);
    }

    #[test]
    fn writer_round_trips_through_file() {
        let path = tmp("round-trip");
        let mut w = WalWriter::open_with_plan(&path, FsyncPolicy::Always, None).unwrap();
        w.append("acme", 1).unwrap();
        w.append("acme", 2).unwrap();
        w.append("zebra", 1).unwrap();
        assert_eq!(w.appended(), 3);
        drop(w);
        let (counts, stats) = replay(&std::fs::read(&path).unwrap());
        assert_eq!(counts.get("acme"), Some(&2));
        assert_eq!(counts.get("zebra"), Some(&1));
        assert_eq!(stats.records_applied, 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reopening_truncates_a_torn_tail() {
        let path = tmp("reopen");
        let mut w = WalWriter::open_with_plan(&path, FsyncPolicy::Always, None).unwrap();
        w.append("a", 1).unwrap();
        drop(w);
        // Simulate a crash mid-append: raw torn bytes at the tail.
        use std::io::Write;
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[42u8, 0, 0]).unwrap();
        drop(f);
        let mut w = WalWriter::open_with_plan(&path, FsyncPolicy::Always, None).unwrap();
        w.append("a", 2).unwrap();
        drop(w);
        let (counts, stats) = replay(&std::fs::read(&path).unwrap());
        assert_eq!(counts.get("a"), Some(&2));
        assert_eq!(stats.records_applied, 2);
        assert_eq!(stats.torn_tail_bytes, 0, "tail must have been repaired");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failed_append_repairs_framing_for_the_next_one() {
        let path = tmp("repair");
        let plan = FaultPlan::at_step(7, FaultPoint::IoTornWrite, 1);
        let mut w = WalWriter::open_with_plan(&path, FsyncPolicy::Always, Some(plan)).unwrap();
        w.append("a", 1).unwrap();
        assert!(w.append("a", 2).is_err(), "injected torn write must error");
        assert!(!w.poisoned());
        w.append("a", 3).unwrap();
        drop(w);
        let (counts, stats) = replay(&std::fs::read(&path).unwrap());
        // Index 1's record was truncated away; 0 and 2 survive intact.
        assert_eq!(counts.get("a"), Some(&3));
        assert_eq!(stats.records_applied, 2);
        assert_eq!(stats.torn_tail_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fsync_policy_parse_vocabulary() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("every=8"), Some(FsyncPolicy::EveryN(8)));
        assert_eq!(FsyncPolicy::parse("every=0"), None);
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
        assert_eq!(FsyncPolicy::parse(""), None);
    }

    #[test]
    fn oversized_and_empty_tenants_are_refused_at_encode() {
        let mut buf = Vec::new();
        assert!(append_record(&mut buf, "", 1).is_err());
        let long = "t".repeat(MAX_TENANT_BYTES + 1);
        assert!(append_record(&mut buf, &long, 1).is_err());
        let edge = "t".repeat(MAX_TENANT_BYTES);
        append_record(&mut buf, &edge, 1).unwrap();
        let (counts, _) = replay(&buf);
        assert_eq!(counts.get(edge.as_str()), Some(&1));
    }
}

//! Minimal HTTP/1.1 framing over blocking streams.
//!
//! Just enough of RFC 9112 for the serve endpoints: request-line +
//! headers + `Content-Length` body on the way in, status + fixed headers
//! + body on the way out. One request per connection (`Connection:
//! close`), which keeps worker accounting and graceful drain trivial —
//! an in-flight request *is* an in-flight connection.
//!
//! Hard limits guard the parser: 16 KiB of headers, 4 MiB of body. A
//! malformed or over-limit request yields a typed [`PrivimError`], which
//! the server maps to `400`.

use privim_rt::{PrivimError, PrivimResult};
use std::io::{Read, Write};

/// Header section cap (bytes).
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Body cap (bytes).
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Origin-form target, query string stripped.
    pub path: String,
    /// Header fields in arrival order, names as sent, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value whose name matches `name` case-insensitively
    /// (header names are case-insensitive per RFC 9110).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

fn bad(msg: &str) -> PrivimError {
    PrivimError::Parse(format!("http: {msg}"))
}

/// Read and parse one request from `r`.
pub fn read_request(r: &mut impl Read) -> PrivimResult<Request> {
    // Accumulate until the header terminator; single-byte reads are fine
    // here (requests are tiny and the OS buffers the socket).
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEADER_BYTES {
            return Err(bad("header section exceeds limit"));
        }
        let n = r
            .read(&mut byte)
            .map_err(|e| PrivimError::io("reading request head", e))?;
        if n == 0 {
            return Err(bad("connection closed before headers completed"));
        }
        head.push(byte[0]);
    }
    let head_text =
        std::str::from_utf8(&head).map_err(|_| bad("headers are not valid UTF-8"))?;
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts.next().ok_or_else(|| bad("empty request line"))?;
    let target = parts.next().ok_or_else(|| bad("request line has no target"))?;
    let version = parts.next().ok_or_else(|| bad("request line has no version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(bad("only HTTP/1.x is supported"));
    }
    let path = target.split('?').next().unwrap_or(target);

    let mut content_length = 0usize;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad("malformed header line"));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| bad("unparsable Content-Length"))?;
        }
        headers.push((name.to_string(), value.to_string()));
    }
    if content_length > MAX_BODY_BYTES {
        return Err(bad("body exceeds limit"));
    }
    let mut body = vec![0u8; content_length];
    r.read_exact(&mut body)
        .map_err(|e| PrivimError::io("reading request body", e))?;
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body,
    })
}

/// Canonical reason phrase for the status codes the server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Write a complete response: status line, `Content-Type`,
/// `Content-Length`, `Connection: close`, body.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> PrivimResult<()> {
    write_response_with_headers(w, status, content_type, &[], body)
}

/// [`write_response`] with additional response headers (e.g. the
/// `Retry-After` a budget-exhausted `429` carries).
pub fn write_response_with_headers(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> PrivimResult<()> {
    // One buffer, one write: a head-then-body write pair interacts with
    // Nagle + delayed ACK to stall small responses for ~40 ms.
    let mut frame = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        status,
        status_reason(status),
        content_type,
        body.len()
    );
    for (name, value) in extra_headers {
        frame.push_str(name);
        frame.push_str(": ");
        frame.push_str(value);
        frame.push_str("\r\n");
    }
    frame.push_str("\r\n");
    let mut frame = frame.into_bytes();
    frame.extend_from_slice(body);
    w.write_all(&frame)
        .and_then(|_| w.flush())
        .map_err(|e| PrivimError::io("writing response", e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /v1/embed?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nabcd";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/embed");
        assert_eq!(req.body, b"abcd");
        assert_eq!(req.header("host"), Some("h"));
    }

    #[test]
    fn headers_are_captured_case_insensitively() {
        let raw =
            b"POST /v1/embed HTTP/1.1\r\nX-Privim-Tenant:  acme \r\nContent-Length: 0\r\n\r\n";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.header("x-privim-tenant"), Some("acme"));
        assert_eq!(req.header("X-PRIVIM-TENANT"), Some("acme"));
        assert_eq!(req.header("content-length"), Some("0"));
        assert_eq!(req.header("missing"), None);
    }

    #[test]
    fn parses_get_without_body() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\n";
        let req = read_request(&mut &raw[..]).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_truncation_garbage_and_limits() {
        assert!(read_request(&mut &b"GET /x HTTP/1.1\r\n"[..]).is_err());
        assert!(read_request(&mut &b"nonsense\r\n\r\n"[..]).is_err());
        assert!(read_request(&mut &b"GET /x SPDY/3\r\n\r\n"[..]).is_err());
        let huge = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert!(read_request(&mut huge.as_bytes()).is_err());
        // body shorter than declared
        let short = b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(read_request(&mut &short[..]).is_err());
    }

    #[test]
    fn response_framing_is_complete() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{\"ok\":true}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn extra_headers_ride_in_the_head_section() {
        let mut out = Vec::new();
        write_response_with_headers(
            &mut out,
            429,
            "application/json",
            &[("Retry-After", "60".to_string())],
            b"{}",
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 60\r\n"));
        let head = text.split_once("\r\n\r\n").unwrap().0;
        assert!(head.contains("Retry-After"), "header must precede the body");
    }
}

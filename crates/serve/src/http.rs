//! HTTP/1.1 framing: incremental request parsing and response assembly.
//!
//! Just enough of RFC 9112 for the serve endpoints, but built for two
//! front ends:
//!
//! * the **threaded** front end reads one request per blocking stream
//!   ([`read_request`]);
//! * the **reactor** front end ([`crate::reactor`]) accumulates bytes in
//!   a per-connection buffer and calls the incremental [`parse_one`] —
//!   which either yields a complete request plus the byte count it
//!   consumed (so the *next* pipelined request can be parsed from the
//!   remainder), or reports that more bytes are needed.
//!
//! Keep-alive semantics follow RFC 9112 §9.3: HTTP/1.1 persists unless
//! the request says `Connection: close`; HTTP/1.0 closes unless it says
//! `Connection: keep-alive`.
//!
//! Hard limits guard the parser: 16 KiB of headers, 4 MiB of body. A
//! request that overflows the header limit is refused with **431**, any
//! other malformed framing (including an unparsable, duplicated-and-
//! conflicting, or over-limit `Content-Length`, or any
//! `Transfer-Encoding` header — no transfer coding is implemented, and
//! guessing at framing is a smuggling vector) with **400** — always
//! followed by a connection close, since framing can't be trusted after
//! a parse error.

use privim_rt::{PrivimError, PrivimResult};
use std::io::{Read, Write};

/// Header section cap (bytes).
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Body cap (bytes).
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Origin-form target, query string stripped.
    pub path: String,
    /// Header fields in arrival order, names as sent, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value whose name matches `name` case-insensitively
    /// (header names are case-insensitive per RFC 9110).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// A request-level protocol error: the status the refusal should carry
/// plus a human-readable reason. Always followed by a connection close.
#[derive(Debug, Clone)]
pub struct HttpError {
    /// Response status (`431` for an oversized header block, `400`
    /// otherwise).
    pub status: u16,
    /// What went wrong, phrased for the error body.
    pub message: String,
}

impl HttpError {
    fn bad(msg: impl Into<String>) -> HttpError {
        HttpError {
            status: 400,
            message: msg.into(),
        }
    }

    fn too_large(msg: impl Into<String>) -> HttpError {
        HttpError {
            status: 431,
            message: msg.into(),
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "http: {}", self.message)
    }
}

/// One successfully parsed request plus its framing metadata.
#[derive(Debug)]
pub struct ParsedRequest {
    /// The request itself.
    pub request: Request,
    /// Bytes of the buffer this request occupied; the caller drops them
    /// and may parse the next pipelined request from what remains.
    pub consumed: usize,
    /// Whether the connection should persist after the response
    /// (RFC 9112 §9.3 semantics over the version + `Connection` header).
    pub keep_alive: bool,
}

/// Incrementally parse the front of `buf`.
///
/// Returns `Ok(None)` when the buffer does not yet hold a complete
/// request (read more bytes and call again), `Ok(Some(..))` when one
/// request is complete, and `Err` when the bytes can never become a
/// valid request. The parse is stateless — it re-derives everything from
/// the buffer — so a caller can feed bytes at any granularity, down to
/// one at a time.
pub fn parse_one(buf: &[u8]) -> Result<Option<ParsedRequest>, HttpError> {
    let Some(head_len) = find_head_end(buf) else {
        // No terminator yet. If the headers could no longer fit under the
        // cap even in principle, refuse now instead of buffering forever.
        if buf.len() >= MAX_HEADER_BYTES {
            return Err(HttpError::too_large(
                "header section exceeds the 16 KiB limit",
            ));
        }
        return Ok(None);
    };
    if head_len > MAX_HEADER_BYTES {
        return Err(HttpError::too_large(
            "header section exceeds the 16 KiB limit",
        ));
    }
    let head_text = std::str::from_utf8(&buf[..head_len])
        .map_err(|_| HttpError::bad("headers are not valid UTF-8"))?;
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::bad("empty request line"))?;
    let target = parts
        .next()
        .ok_or_else(|| HttpError::bad("request line has no target"))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::bad("request line has no version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::bad("only HTTP/1.x is supported"));
    }
    let http_10 = version == "HTTP/1.0";
    let path = target.split('?').next().unwrap_or(target);

    let mut content_length: Option<usize> = None;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::bad("malformed header line"));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("transfer-encoding") {
            // No transfer coding is implemented here, and RFC 9112 §6.1
            // forbids guessing: framing a chunked message as body-less
            // would hand the body bytes to the pipelined-request parser
            // as attacker-framed "requests" (request smuggling).
            return Err(HttpError::bad("Transfer-Encoding is not supported"));
        }
        if name.eq_ignore_ascii_case("content-length") {
            let parsed = parse_content_length(value)?;
            // Conflicting duplicates are a request-smuggling vector
            // (RFC 9112 §6.3); matching duplicates are tolerated.
            if content_length.is_some_and(|prev| prev != parsed) {
                return Err(HttpError::bad("conflicting Content-Length headers"));
            }
            content_length = Some(parsed);
        }
        headers.push((name.to_string(), value.to_string()));
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::bad("body exceeds the 4 MiB limit"));
    }
    let total = head_len + content_length;
    if buf.len() < total {
        return Ok(None);
    }
    let request = Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: buf[head_len..total].to_vec(),
    };
    let keep_alive = wants_keep_alive(http_10, &request.headers);
    Ok(Some(ParsedRequest {
        request,
        consumed: total,
        keep_alive,
    }))
}

/// Strict `Content-Length`: ASCII digits only (no sign, no whitespace
/// beyond the already-trimmed value, no hex), rejected on overflow — so
/// a malformed length can never stall the connection in a body read that
/// will never complete.
fn parse_content_length(value: &str) -> Result<usize, HttpError> {
    if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
        return Err(HttpError::bad("malformed Content-Length"));
    }
    value
        .parse::<usize>()
        .map_err(|_| HttpError::bad("Content-Length overflows"))
}

/// Offset one past the `\r\n\r\n` header terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
}

/// RFC 9112 §9.3 persistence: HTTP/1.1 defaults to keep-alive unless the
/// request says `Connection: close`; HTTP/1.0 defaults to close unless
/// it says `Connection: keep-alive`. The `Connection` value is a
/// comma-separated token list, matched case-insensitively.
fn wants_keep_alive(http_10: bool, headers: &[(String, String)]) -> bool {
    let token = |want: &str| {
        headers
            .iter()
            .filter(|(n, _)| n.eq_ignore_ascii_case("connection"))
            .flat_map(|(_, v)| v.split(','))
            .any(|t| t.trim().eq_ignore_ascii_case(want))
    };
    if http_10 {
        token("keep-alive")
    } else {
        !token("close")
    }
}

/// Read and parse one request from a blocking stream (the threaded
/// front end's entry point). Returns the request plus its keep-alive
/// flag; the threaded front end serves one request per connection and
/// ignores the flag, but the error's `status` (431 vs 400) is honored.
pub fn read_request(r: &mut impl Read) -> Result<ParsedRequest, HttpError> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(parsed) = parse_one(&buf)? {
            return Ok(parsed);
        }
        let n = r
            .read(&mut chunk)
            .map_err(|e| HttpError::bad(format!("reading request: {e}")))?;
        if n == 0 {
            return Err(HttpError::bad(
                "connection closed before the request completed",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Canonical reason phrase for the status codes the server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Assemble a complete response frame: status line, `Content-Type`,
/// `Content-Length`, `Connection` (`keep-alive` or `close`), any extra
/// headers, then the body. One buffer so the caller can issue a single
/// write (a head-then-body write pair interacts with Nagle + delayed ACK
/// to stall small responses for ~40 ms).
pub fn response_frame(
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
    keep_alive: bool,
) -> Vec<u8> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut frame = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status,
        status_reason(status),
        content_type,
        body.len(),
        connection,
    );
    for (name, value) in extra_headers {
        frame.push_str(name);
        frame.push_str(": ");
        frame.push_str(value);
        frame.push_str("\r\n");
    }
    frame.push_str("\r\n");
    let mut frame = frame.into_bytes();
    frame.extend_from_slice(body);
    frame
}

/// Write a complete `Connection: close` response.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> PrivimResult<()> {
    write_response_with_headers(w, status, content_type, &[], body)
}

/// [`write_response`] with additional response headers (e.g. the
/// `Retry-After` a budget-exhausted `429` carries).
pub fn write_response_with_headers(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> PrivimResult<()> {
    let frame = response_frame(status, content_type, extra_headers, body, false);
    w.write_all(&frame)
        .and_then(|_| w.flush())
        .map_err(|e| PrivimError::io("writing response", e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_whole(raw: &[u8]) -> ParsedRequest {
        parse_one(raw).unwrap().expect("complete request")
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /v1/embed?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nabcd";
        let p = parse_whole(raw);
        assert_eq!(p.request.method, "POST");
        assert_eq!(p.request.path, "/v1/embed");
        assert_eq!(p.request.body, b"abcd");
        assert_eq!(p.request.header("host"), Some("h"));
        assert_eq!(p.consumed, raw.len());
        assert!(p.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn headers_are_captured_case_insensitively() {
        let raw =
            b"POST /v1/embed HTTP/1.1\r\nX-Privim-Tenant:  acme \r\nContent-Length: 0\r\n\r\n";
        let req = parse_whole(raw).request;
        assert_eq!(req.header("x-privim-tenant"), Some("acme"));
        assert_eq!(req.header("X-PRIVIM-TENANT"), Some("acme"));
        assert_eq!(req.header("content-length"), Some("0"));
        assert_eq!(req.header("missing"), None);
    }

    #[test]
    fn parses_get_without_body() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\n";
        let p = parse_whole(raw);
        assert_eq!(p.request.method, "GET");
        assert_eq!(p.request.path, "/healthz");
        assert!(p.request.body.is_empty());
    }

    #[test]
    fn incremental_parse_needs_more_until_complete() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc";
        // Every strict prefix is NeedMore; the full buffer completes.
        for cut in 0..raw.len() {
            assert!(
                parse_one(&raw[..cut]).unwrap().is_none(),
                "prefix of {cut} bytes must not produce a request"
            );
        }
        let p = parse_whole(raw);
        assert_eq!(p.request.body, b"abc");
        assert_eq!(p.consumed, raw.len());
    }

    #[test]
    fn pipelined_requests_parse_in_sequence() {
        let a = b"POST /v1/embed HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi".to_vec();
        let b = b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n".to_vec();
        let mut buf = a.clone();
        buf.extend_from_slice(&b);
        let first = parse_whole(&buf);
        assert_eq!(first.request.path, "/v1/embed");
        assert_eq!(first.consumed, a.len());
        assert!(first.keep_alive);
        let second = parse_whole(&buf[first.consumed..]);
        assert_eq!(second.request.path, "/healthz");
        assert!(!second.keep_alive, "Connection: close ends persistence");
        assert_eq!(first.consumed + second.consumed, buf.len());
    }

    #[test]
    fn keep_alive_semantics_cover_http_10() {
        let v11 = b"GET / HTTP/1.1\r\n\r\n";
        assert!(parse_whole(v11).keep_alive);
        let v11_close = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        assert!(!parse_whole(v11_close).keep_alive);
        let v11_close_list = b"GET / HTTP/1.1\r\nConnection: Keep-Alive, Close\r\n\r\n";
        assert!(!parse_whole(v11_close_list).keep_alive);
        // HTTP/1.0 closes by default and persists only on request.
        let v10 = b"GET / HTTP/1.0\r\n\r\n";
        assert!(!parse_whole(v10).keep_alive);
        let v10_ka = b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
        assert!(parse_whole(v10_ka).keep_alive);
    }

    #[test]
    fn oversized_header_block_is_431() {
        // A terminator-less flood past the cap must be refused, not
        // buffered forever (the slowloris memory bound).
        let mut flood = b"GET / HTTP/1.1\r\n".to_vec();
        while flood.len() < MAX_HEADER_BYTES {
            flood.extend_from_slice(b"X-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        let err = parse_one(&flood).unwrap_err();
        assert_eq!(err.status, 431);
    }

    #[test]
    fn malformed_content_length_is_400_not_a_stall() {
        for bad in [
            "Content-Length: -5",
            "Content-Length: 0x10",
            "Content-Length: 1 2",
            "Content-Length: ",
            "Content-Length: 99999999999999999999999999",
        ] {
            let raw = format!("POST /x HTTP/1.1\r\n{bad}\r\n\r\n");
            let err = parse_one(raw.as_bytes()).unwrap_err();
            assert_eq!(err.status, 400, "{bad}");
        }
        // Conflicting duplicates are refused; agreeing ones tolerated.
        let conflict = b"POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 3\r\n\r\n";
        assert_eq!(parse_one(conflict).unwrap_err().status, 400);
        let agree = b"POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok";
        assert_eq!(parse_whole(agree).request.body, b"ok");
    }

    #[test]
    fn transfer_encoding_is_rejected_not_smuggled() {
        // Framing this as body-less would feed the chunked body to the
        // pipelined-request parser as a fake follow-up request.
        let chunked =
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n5\r\nGET /\r\n0\r\n\r\n";
        assert_eq!(parse_one(chunked).unwrap_err().status, 400);
        // Case-insensitive, and rejected even alongside Content-Length
        // (the classic TE.CL smuggling shape) or with a non-chunked
        // coding.
        let te_cl =
            b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\nContent-Length: 5\r\n\r\nhello";
        assert_eq!(parse_one(te_cl).unwrap_err().status, 400);
        let gzip = b"POST /x HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n";
        assert_eq!(parse_one(gzip).unwrap_err().status, 400);
        assert_eq!(read_request(&mut &chunked[..]).unwrap_err().status, 400);
    }

    #[test]
    fn rejects_truncation_garbage_and_limits() {
        assert!(read_request(&mut &b"GET /x HTTP/1.1\r\n"[..]).is_err());
        assert!(read_request(&mut &b"nonsense\r\n\r\n"[..]).is_err());
        assert!(read_request(&mut &b"GET /x SPDY/3\r\n\r\n"[..]).is_err());
        let huge = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(read_request(&mut huge.as_bytes()).is_err());
        // body shorter than declared
        let short = b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        assert!(read_request(&mut &short[..]).is_err());
    }

    #[test]
    fn blocking_read_request_matches_incremental_parse() {
        let raw = b"POST /v1/seeds HTTP/1.1\r\nHost: h\r\nContent-Length: 8\r\n\r\n{\"k\": 3}";
        let p = read_request(&mut &raw[..]).unwrap();
        assert_eq!(p.request.path, "/v1/seeds");
        assert_eq!(p.request.body, b"{\"k\": 3}");
        assert!(p.keep_alive);
    }

    #[test]
    fn response_framing_is_complete() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", b"{\"ok\":true}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn keep_alive_frame_differs_only_in_connection_header() {
        let ka = response_frame(200, "application/json", &[], b"{}", true);
        let close = response_frame(200, "application/json", &[], b"{}", false);
        let ka = String::from_utf8(ka).unwrap();
        let close = String::from_utf8(close).unwrap();
        assert!(ka.contains("Connection: keep-alive\r\n"));
        assert!(close.contains("Connection: close\r\n"));
        assert_eq!(
            ka.replace("Connection: keep-alive", "Connection: close"),
            close
        );
    }

    #[test]
    fn extra_headers_ride_in_the_head_section() {
        let mut out = Vec::new();
        write_response_with_headers(
            &mut out,
            429,
            "application/json",
            &[("Retry-After", "60".to_string())],
            b"{}",
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 60\r\n"));
        let head = text.split_once("\r\n\r\n").unwrap().0;
        assert!(head.contains("Retry-After"), "header must precede the body");
    }
}

//! Deterministic fault injection for exercising recovery paths.
//!
//! A [`FaultPlan`] decides, purely as a function of `(seed, point, index)`,
//! whether a given fault point fires at a given logical index. Decisions
//! are keyed on *logical* indices (DP-SGD step number, container item
//! index, write counter) rather than wall clock or global mutable state,
//! so a faulty run replays bit-identically at any thread count — the same
//! property the rest of the workspace guarantees for healthy runs.
//!
//! Plans come from two places:
//!
//! * explicitly, in tests: `FaultPlan::at_step(seed, point, step)` or
//!   `FaultPlan::new(seed, &points, rate)`;
//! * from the environment, for whole-process experiments:
//!   `PRIVIM_FAULT=nan_gradient,io_write_fail` (or `all`) enables points,
//!   with `PRIVIM_FAULT_SEED` (default 0), `PRIVIM_FAULT_RATE` (default
//!   0.05) and optional `PRIVIM_FAULT_AT=<index>` pinning the firing index.
//!   [`env_plan`] parses once and caches.

use crate::{ChaCha8Rng, Rng, SeedableRng};
use std::sync::OnceLock;

/// The registry of fault points threaded through the workspace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPoint {
    /// Replace one coordinate of the summed per-step gradient with NaN
    /// (trainer, indexed by step).
    NanGradient,
    /// Scale the summed per-step gradient by 1e9 (trainer, indexed by
    /// step) — a finite but divergence-inducing blow-up.
    OversizedGradient,
    /// Drop every sample from one DP-SGD batch (trainer, indexed by step).
    EmptyBatch,
    /// Poison one prepared subgraph's feature matrix with NaN (container
    /// preparation, indexed by item).
    PoisonedSubgraph,
    /// Fail an atomic result write before the rename (result writer,
    /// indexed by write counter).
    IoWriteFail,
    /// A write syscall lands only a few bytes — the cut falls inside a
    /// record's length/CRC header — then errors (file writer, indexed by
    /// write counter).
    IoShortWrite,
    /// A write lands the record header and part of the payload, then
    /// errors — the classic torn-tail shape recovery must tolerate (file
    /// writer, indexed by write counter).
    IoTornWrite,
    /// The write succeeds but fsync reports failure: the bytes may or may
    /// not be durable (file writer, indexed by write counter).
    IoFsyncFail,
    /// Write and fsync both succeed, then the process "dies" before the
    /// caller can acknowledge — durable but unacknowledged state (file
    /// writer, indexed by write counter).
    CrashAfterWrite,
}

impl FaultPoint {
    /// Every fault point, in registry order.
    pub const ALL: [FaultPoint; 9] = [
        FaultPoint::NanGradient,
        FaultPoint::OversizedGradient,
        FaultPoint::EmptyBatch,
        FaultPoint::PoisonedSubgraph,
        FaultPoint::IoWriteFail,
        FaultPoint::IoShortWrite,
        FaultPoint::IoTornWrite,
        FaultPoint::IoFsyncFail,
        FaultPoint::CrashAfterWrite,
    ];

    /// Canonical snake_case name (the `PRIVIM_FAULT` vocabulary).
    pub fn name(&self) -> &'static str {
        match self {
            FaultPoint::NanGradient => "nan_gradient",
            FaultPoint::OversizedGradient => "oversized_gradient",
            FaultPoint::EmptyBatch => "empty_batch",
            FaultPoint::PoisonedSubgraph => "poisoned_subgraph",
            FaultPoint::IoWriteFail => "io_write_fail",
            FaultPoint::IoShortWrite => "io_short_write",
            FaultPoint::IoTornWrite => "io_torn_write",
            FaultPoint::IoFsyncFail => "io_fsync_fail",
            FaultPoint::CrashAfterWrite => "crash_after_write",
        }
    }

    /// Parse a canonical name.
    pub fn from_name(s: &str) -> Option<FaultPoint> {
        FaultPoint::ALL.into_iter().find(|p| p.name() == s)
    }

    fn bit(&self) -> u16 {
        match self {
            FaultPoint::NanGradient => 1 << 0,
            FaultPoint::OversizedGradient => 1 << 1,
            FaultPoint::EmptyBatch => 1 << 2,
            FaultPoint::PoisonedSubgraph => 1 << 3,
            FaultPoint::IoWriteFail => 1 << 4,
            FaultPoint::IoShortWrite => 1 << 5,
            FaultPoint::IoTornWrite => 1 << 6,
            FaultPoint::IoFsyncFail => 1 << 7,
            FaultPoint::CrashAfterWrite => 1 << 8,
        }
    }

    /// Per-point domain separator for the firing hash.
    fn salt(&self) -> u64 {
        0xFA17_0000u64 | self.bit() as u64
    }
}

/// A deterministic fault schedule: which points are armed, and when they
/// fire. `Copy` so configs that embed it stay `Copy`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    mask: u16,
    rate: f64,
    /// When set, armed points fire exactly at this index (rate ignored).
    at: Option<u64>,
}

impl FaultPlan {
    /// A plan arming `points` with independent per-index firing
    /// probability `rate` (clamped to `[0, 1]`).
    pub fn new(seed: u64, points: &[FaultPoint], rate: f64) -> FaultPlan {
        let mut mask = 0u16;
        for p in points {
            mask |= p.bit();
        }
        FaultPlan {
            seed,
            mask,
            rate: rate.clamp(0.0, 1.0),
            at: None,
        }
    }

    /// A plan where `point` fires exactly once, at logical index `step` —
    /// the workhorse for reproducing a specific failure in tests.
    pub fn at_step(seed: u64, point: FaultPoint, step: u64) -> FaultPlan {
        FaultPlan {
            seed,
            mask: point.bit(),
            rate: 1.0,
            at: Some(step),
        }
    }

    /// Whether `point` is armed at all.
    pub fn enabled(&self, point: FaultPoint) -> bool {
        self.mask & point.bit() != 0
    }

    /// The seed this plan derives its decisions from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Does `point` fire at logical `index`? Pure function of
    /// `(seed, point, index)` — no interior state, no thread sensitivity.
    pub fn fires(&self, point: FaultPoint, index: u64) -> bool {
        if !self.enabled(point) {
            return false;
        }
        match self.at {
            Some(a) => index == a,
            None => {
                let key = self
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(point.salt())
                    .wrapping_add(index.wrapping_mul(0xD134_2543_DE82_EF95));
                let mut rng = ChaCha8Rng::seed_from_u64(key);
                rng.gen::<f64>() < self.rate
            }
        }
    }
}

/// The process-wide plan parsed from the environment, if any. Parsed once;
/// `None` unless `PRIVIM_FAULT` is set to a non-empty point list.
pub fn env_plan() -> Option<FaultPlan> {
    static PLAN: OnceLock<Option<FaultPlan>> = OnceLock::new();
    *PLAN.get_or_init(parse_env)
}

fn parse_env() -> Option<FaultPlan> {
    let spec = std::env::var("PRIVIM_FAULT").ok()?;
    let spec = spec.trim();
    if spec.is_empty() {
        return None;
    }
    let points: Vec<FaultPoint> = if spec == "all" {
        FaultPoint::ALL.to_vec()
    } else {
        spec.split(',')
            .filter_map(|s| {
                let s = s.trim();
                let p = FaultPoint::from_name(s);
                if p.is_none() && !s.is_empty() {
                    eprintln!("warning: unknown PRIVIM_FAULT point {s:?} ignored");
                }
                p
            })
            .collect()
    };
    if points.is_empty() {
        return None;
    }
    let var_u64 = |name: &str, default: u64| {
        std::env::var(name)
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(default)
    };
    let rate = std::env::var("PRIVIM_FAULT_RATE")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0.05);
    let mut plan = FaultPlan::new(var_u64("PRIVIM_FAULT_SEED", 0), &points, rate);
    if let Ok(at) = std::env::var("PRIVIM_FAULT_AT") {
        if let Ok(at) = at.trim().parse() {
            plan.at = Some(at);
        }
    }
    Some(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in FaultPoint::ALL {
            assert_eq!(FaultPoint::from_name(p.name()), Some(p));
        }
        assert_eq!(FaultPoint::from_name("no_such_fault"), None);
    }

    #[test]
    fn bits_are_distinct() {
        let mut seen = 0u16;
        for p in FaultPoint::ALL {
            assert_eq!(seen & p.bit(), 0, "{} shares a mask bit", p.name());
            seen |= p.bit();
        }
    }

    #[test]
    fn io_points_fire_independently() {
        let plan = FaultPlan::at_step(5, FaultPoint::IoTornWrite, 3);
        assert!(plan.fires(FaultPoint::IoTornWrite, 3));
        assert!(!plan.fires(FaultPoint::IoTornWrite, 2));
        assert!(!plan.fires(FaultPoint::IoShortWrite, 3));
        assert!(!plan.fires(FaultPoint::IoFsyncFail, 3));
        assert!(!plan.fires(FaultPoint::CrashAfterWrite, 3));
    }

    #[test]
    fn firing_is_deterministic_and_seed_sensitive() {
        let a = FaultPlan::new(1, &[FaultPoint::NanGradient], 0.5);
        let b = FaultPlan::new(1, &[FaultPoint::NanGradient], 0.5);
        let c = FaultPlan::new(2, &[FaultPoint::NanGradient], 0.5);
        let fire = |p: &FaultPlan| -> Vec<bool> {
            (0..64).map(|i| p.fires(FaultPoint::NanGradient, i)).collect()
        };
        assert_eq!(fire(&a), fire(&b), "same seed must replay identically");
        assert_ne!(fire(&a), fire(&c), "different seeds must differ");
    }

    #[test]
    fn disarmed_points_never_fire() {
        let p = FaultPlan::new(3, &[FaultPoint::NanGradient], 1.0);
        assert!(!p.fires(FaultPoint::IoWriteFail, 0));
        assert!(p.fires(FaultPoint::NanGradient, 0));
    }

    #[test]
    fn at_step_fires_exactly_once() {
        let p = FaultPlan::at_step(9, FaultPoint::OversizedGradient, 5);
        let hits: Vec<u64> = (0..100)
            .filter(|&i| p.fires(FaultPoint::OversizedGradient, i))
            .collect();
        assert_eq!(hits, vec![5]);
    }

    #[test]
    fn rate_zero_and_one_are_exact() {
        let never = FaultPlan::new(4, &[FaultPoint::EmptyBatch], 0.0);
        let always = FaultPlan::new(4, &[FaultPoint::EmptyBatch], 1.0);
        for i in 0..50 {
            assert!(!never.fires(FaultPoint::EmptyBatch, i));
            assert!(always.fires(FaultPoint::EmptyBatch, i));
        }
    }

    #[test]
    fn rate_is_roughly_respected() {
        let p = FaultPlan::new(11, &[FaultPoint::PoisonedSubgraph], 0.2);
        let n = 2000;
        let hits = (0..n)
            .filter(|&i| p.fires(FaultPoint::PoisonedSubgraph, i))
            .count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.05, "empirical rate {frac}");
    }
}

//! ChaCha stream cipher core used as a deterministic RNG.
//!
//! The block function follows RFC 8439 (state layout, quarter round,
//! little-endian serialisation) and is pinned to the RFC's test vectors in
//! this module's tests. The RNG wrapper runs the keystream with a 64-bit
//! block counter in words 12–13 (the original djb layout — the quarter
//! rounds are identical, only the counter width differs), which gives a
//! practically unbounded period for Monte-Carlo workloads.
//!
//! `ChaCha8Rng` (8 rounds) is the workhorse: measurably faster than 20
//! rounds and still far beyond anything a sampling experiment can detect.
//! `ChaCha20Rng` is the full-strength variant used where the RFC vectors
//! apply directly.

use crate::rng::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Run `rounds` ChaCha rounds (must be even: pairs of column + diagonal
/// rounds) over `input` and add the input state back (the final feed-forward
/// of RFC 8439 §2.3).
fn chacha_block(input: &[u32; 16], rounds: usize) -> [u32; 16] {
    debug_assert!(rounds % 2 == 0);
    let mut x = *input;
    for _ in 0..rounds / 2 {
        // column round
        quarter_round(&mut x, 0, 4, 8, 12);
        quarter_round(&mut x, 1, 5, 9, 13);
        quarter_round(&mut x, 2, 6, 10, 14);
        quarter_round(&mut x, 3, 7, 11, 15);
        // diagonal round
        quarter_round(&mut x, 0, 5, 10, 15);
        quarter_round(&mut x, 1, 6, 11, 12);
        quarter_round(&mut x, 2, 7, 8, 13);
        quarter_round(&mut x, 3, 4, 9, 14);
    }
    for (o, i) in x.iter_mut().zip(input) {
        *o = o.wrapping_add(*i);
    }
    x
}

/// The RFC 8439 §2.3 block function: 20 rounds, 32-bit block counter,
/// 96-bit nonce, keystream serialised little-endian. Exposed so the RFC
/// test vectors can exercise exactly the published interface.
pub fn chacha20_block_ietf(key: &[u8; 32], counter: u32, nonce: &[u8; 12]) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&CONSTANTS);
    for i in 0..8 {
        // privim-lint: allow(panic, reason = "fixed 4-byte chunk of a [u8; 32] key; try_into is infallible")
        state[4 + i] = u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().unwrap());
    }
    state[12] = counter;
    for i in 0..3 {
        // privim-lint: allow(panic, reason = "fixed 4-byte chunk of a [u8; 12] nonce; try_into is infallible")
        state[13 + i] = u32::from_le_bytes(nonce[4 * i..4 * i + 4].try_into().unwrap());
    }
    let out = chacha_block(&state, 20);
    let mut bytes = [0u8; 64];
    for (i, w) in out.iter().enumerate() {
        bytes[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
    }
    bytes
}

/// A ChaCha keystream generator with `R` rounds, 256-bit key and 64-bit
/// block counter. Deterministic: the word stream is a pure function of the
/// seed.
#[derive(Clone, Debug)]
pub struct ChaChaRng<const R: usize> {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    idx: usize,
}

impl<const R: usize> ChaChaRng<R> {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // words 14–15: stream id, fixed at zero
        self.buf = chacha_block(&state, R);
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl<const R: usize> RngCore for ChaChaRng<R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<const R: usize> SeedableRng for ChaChaRng<R> {
    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (i, k) in key.iter_mut().enumerate() {
            // privim-lint: allow(panic, reason = "fixed 4-byte chunk of a [u8; 32] seed; try_into is infallible")
            *k = u32::from_le_bytes(seed[4 * i..4 * i + 4].try_into().unwrap());
        }
        ChaChaRng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

/// 8-round ChaCha RNG — the workspace default for samplers and training.
pub type ChaCha8Rng = ChaChaRng<8>;
/// 12-round ChaCha RNG.
pub type ChaCha12Rng = ChaChaRng<12>;
/// 20-round (full RFC 8439 strength) ChaCha RNG.
pub type ChaCha20Rng = ChaChaRng<20>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    /// RFC 8439 §2.1.1: the quarter-round test vector.
    #[test]
    fn rfc8439_quarter_round_vector() {
        let mut s = [0u32; 16];
        s[0] = 0x1111_1111;
        s[1] = 0x0102_0304;
        s[2] = 0x9b8d_6f43;
        s[3] = 0x0123_4567;
        quarter_round(&mut s, 0, 1, 2, 3);
        assert_eq!(s[0], 0xea2a_92f4);
        assert_eq!(s[1], 0xcb1c_f8ce);
        assert_eq!(s[2], 0x4581_472e);
        assert_eq!(s[3], 0x5881_c4bb);
    }

    /// RFC 8439 §2.3.2: the full block-function test vector — key
    /// 00..1f, counter 1, nonce 000000090000004a00000000.
    #[test]
    fn rfc8439_block_function_vector() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce: [u8; 12] = [
            0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let keystream = chacha20_block_ietf(&key, 1, &nonce);
        let expected: [u8; 64] = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4, 0xc7, 0xd1, 0xf4, 0xc7, 0x33, 0xc0, 0x68, 0x03, 0x04, 0x22, 0xaa, 0x9a,
            0xc3, 0xd4, 0x6c, 0x4e, 0xd2, 0x82, 0x64, 0x46, 0x07, 0x9f, 0xaa, 0x09, 0x14, 0xc2,
            0xd7, 0x05, 0xd9, 0x8b, 0x02, 0xa2, 0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e, 0xb9,
            0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50, 0x3c, 0x4e,
        ];
        assert_eq!(keystream, expected);
    }

    /// The RNG wrapper with a zero key must reproduce the RFC layout run
    /// with counter 0 / nonce 0 (20-round variant, first 16 words).
    #[test]
    fn rng_stream_matches_block_function() {
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        let direct = chacha20_block_ietf(&[0u8; 32], 0, &[0u8; 12]);
        for i in 0..16 {
            let w = u32::from_le_bytes(direct[4 * i..4 * i + 4].try_into().unwrap());
            assert_eq!(rng.next_u32(), w, "word {i}");
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "streams nearly identical ({same}/64 words equal)");
    }

    #[test]
    fn fill_bytes_handles_unaligned_lengths() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for len in [0usize, 1, 3, 4, 5, 63, 64, 65] {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0), "len {len} all zero");
            }
        }
    }

    #[test]
    fn counter_advances_across_blocks() {
        // 16 words per block: word 17 must come from the second block.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let first: Vec<u32> = (0..32).map(|_| rng.next_u32()).collect();
        assert_ne!(&first[..16], &first[16..], "blocks repeated");
    }

    #[test]
    fn gen_produces_unit_interval_doubles() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}

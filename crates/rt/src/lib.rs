#![warn(missing_docs)]
//! # privim-rt
//!
//! The self-contained runtime substrate for the PrivIM workspace. Every
//! other crate in the workspace depends only on `std` and on this crate,
//! which keeps the whole reproduction buildable and testable on a machine
//! with no network access and no crates.io registry.
//!
//! Four subsystems:
//!
//! * [`rng`] — a deterministic ChaCha random number generator (the block
//!   function is validated against the RFC 8439 test vectors), plus the
//!   small sampling API the repo actually uses: [`SeedableRng::seed_from_u64`],
//!   [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//!   [`SliceRandom::shuffle`] and the [`dist`] module (uniform / Gaussian /
//!   Bernoulli / exponential) used for DP noise.
//! * [`par`] — a scoped `std::thread` parallel map / reduce pool with a
//!   `PRIVIM_THREADS` override and a sequential fallback. Work is split
//!   into contiguous index chunks, so results are always returned in input
//!   order and every computation is bit-deterministic regardless of the
//!   thread count.
//! * [`json`] — a minimal JSON writer + parser ([`json::Value`],
//!   [`json::ToJson`]) that replaces `serde`/`serde_json` for experiment
//!   output and model persistence. `f64` values round-trip exactly.
//! * [`bench`] — a tiny fixed-iteration micro-benchmark harness replacing
//!   `criterion` for the `crates/bench` benches.
//!
//! Plus [`crc`] — a compile-time-tabled CRC-32 used by checkpoint and
//! serve-bundle formats to reject truncated or corrupted files.
//!
//! Two fault-tolerance subsystems sit alongside them:
//!
//! * [`error`] — [`PrivimError`], the typed error every library-path
//!   `Result` in the workspace carries.
//! * [`fault`] — deterministic, seed-driven fault injection
//!   ([`fault::FaultPlan`]) used to test divergence-recovery and retry
//!   paths bit-reproducibly at any thread count.
//! * [`fsio`] — fsync-aware file primitives (fault-injectable writes,
//!   durable atomic replace) backing the serve-side WAL and bundle
//!   snapshots.

pub mod bench;
pub mod chacha;
pub mod crc;
pub mod error;
pub mod fault;
pub mod fsio;
pub mod json;
pub mod par;
pub mod rng;

pub use chacha::{ChaCha12Rng, ChaCha20Rng, ChaCha8Rng};
pub use error::{PrivimError, PrivimResult};
pub use rng::{dist, Rng, RngCore, SeedableRng, SliceRandom};

//! Minimal JSON reader/writer replacing `serde`/`serde_json`.
//!
//! A [`Value`] tree with a recursive-descent parser and a writer whose
//! `f64` output uses Rust's shortest round-trip formatting, so model
//! parameters survive a save/load cycle bit-exactly. Object key order is
//! preserved (insertion order), which keeps experiment JSON diffs stable.
//!
//! Structs that need serialisation implement [`ToJson`] by hand — the
//! workspace only serialises a handful of result/checkpoint types, so a
//! derive macro would cost more than it saves.

use std::fmt;

/// A parsed or constructed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion-ordered `(key, value)` pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(fields: Vec<(&str, Value)>) -> Value {
        Value::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // privim-lint: allow(float-eq, reason = "fract() == 0.0 is the exact integrality test; any epsilon would accept non-integers")
            Value::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as `usize`, if it is a non-negative integral number.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|x| x as usize)
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a slice of elements, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parse a JSON document. Rejects trailing garbage.
    pub fn parse(input: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Compact serialisation.
    pub fn to_json_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialisation (2-space indent).
    pub fn to_json_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(x) => write_number(out, *x),
            Value::Str(s) => write_string(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Value::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_number(out: &mut String, x: f64) {
    if x.is_finite() {
        // Rust's Display for f64 is the shortest representation that
        // parses back to the same bits — exact round-trip.
        use fmt::Write;
        // privim-lint: allow(panic, reason = "write! into a String cannot fail; fmt::Write for String is infallible")
        write!(out, "{x}").unwrap();
    } else {
        // JSON has no NaN/Inf; match serde_json's lossy `null` fallback.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                // privim-lint: allow(panic, reason = "write! into a String cannot fail; fmt::Write for String is infallible")
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax error with a byte offset.
#[derive(Debug, Clone)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte position in the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect_byte(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // surrogate pair handling for completeness
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xd800) << 10)
                                        + (lo.wrapping_sub(0xdc00) & 0x3ff);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        // privim-lint: allow(panic, reason = "the scanned range contains only ASCII digit/sign/dot/exponent bytes, which are valid UTF-8")
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Hand-written serialisation to a [`Value`] tree.
pub trait ToJson {
    /// Convert to a JSON value.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

macro_rules! num_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
    )*};
}

num_to_json!(f64, f32, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(x) => x.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

/// Implement [`ToJson`] for a struct by listing its fields — the poor
/// man's derive. Field order in the macro call is the JSON key order.
///
/// ```
/// struct Row {
///     name: String,
///     score: f64,
/// }
/// privim_rt::impl_to_json_struct!(Row { name, score });
/// ```
#[macro_export]
macro_rules! impl_to_json_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Value {
                $crate::json::Value::obj(vec![
                    $((stringify!($field), $crate::json::ToJson::to_json(&self.$field)),)+
                ])
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse("true").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse(" false ").unwrap(), Value::Bool(false));
        assert_eq!(Value::parse("3.25").unwrap(), Value::Num(3.25));
        assert_eq!(Value::parse("-1e3").unwrap(), Value::Num(-1000.0));
        assert_eq!(
            Value::parse("\"a\\nb\"").unwrap(),
            Value::Str("a\nb".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = Value::parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[1].as_u64(), Some(2));
        assert_eq!(arr[2].get("b"), Some(&Value::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("not json").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{}extra").is_err());
        assert!(Value::parse("\"open").is_err());
        assert!(Value::parse("").is_err());
    }

    #[test]
    fn f64_round_trips_exactly() {
        let xs = [
            0.1,
            -1.0 / 3.0,
            f64::MIN_POSITIVE,
            1.7976931348623157e308,
            -0.0,
            123456789.123456789,
            2.0f64.powi(-52),
        ];
        for &x in &xs {
            let s = Value::Num(x).to_json_string();
            let back = Value::parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} -> {s} -> {back}");
        }
    }

    #[test]
    fn non_finite_becomes_null() {
        assert_eq!(Value::Num(f64::NAN).to_json_string(), "null");
        assert_eq!(Value::Num(f64::INFINITY).to_json_string(), "null");
    }

    #[test]
    fn non_finite_round_trip_is_null_not_error() {
        // Pinned behavior: NaN/±inf serialise as `null` (JSON has no such
        // numbers; this matches serde_json's lossy default) and therefore
        // come back as `Value::Null`, NOT as a number and NOT as a parse
        // error. Metrics/results writers that may hold NaN sentinels rely
        // on the round trip staying total.
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let doc = Value::obj(vec![("v", Value::Num(x))]);
            let s = doc.to_json_string();
            let back = Value::parse(&s).unwrap();
            assert_eq!(back.get("v"), Some(&Value::Null), "{x} -> {s}");
            // ...and the null reads as an absent number, never a panic.
            assert_eq!(back.get("v").unwrap().as_f64(), None);
            assert_eq!(back.get("v").unwrap().as_u64(), None);
        }
    }

    #[test]
    fn integer_counters_round_trip_exactly_up_to_2_pow_53() {
        // Metrics counters are u64 but JSON numbers are f64: every integer
        // with magnitude <= 2^53 is exactly representable and must survive
        // a write/parse cycle bit-exactly.
        const MAX_EXACT: u64 = 1 << 53;
        for v in [0u64, 1, 42, (1 << 32) + 3, MAX_EXACT - 1, MAX_EXACT] {
            let s = Value::Num(v as f64).to_json_string();
            assert_eq!(Value::parse(&s).unwrap().as_u64(), Some(v), "{v} -> {s}");
        }
    }

    #[test]
    fn integer_counters_above_2_pow_53_are_lossy_but_total() {
        // Pinned behavior: counters above 2^53 round to the nearest
        // representable f64 (here 2^53 + 1 -> 2^53). The encoding is lossy
        // but never fails, never goes negative, and stays monotone — a
        // serve process would need ~28 years at 10M requests/sec to get
        // there, so we document the cliff instead of inventing a string
        // encoding for counters. Identifiers that must be exact (e.g.
        // 64-bit graph fingerprints) are serialised as hex strings instead.
        const MAX_EXACT: u64 = 1 << 53;
        let above = MAX_EXACT + 1;
        let s = Value::Num(above as f64).to_json_string();
        let back = Value::parse(&s).unwrap().as_u64().unwrap();
        assert_eq!(back, MAX_EXACT, "2^53 + 1 rounds down to 2^53");
        // u64::MAX rounds up to 2^64; the saturating float->int cast clamps
        // the readback to u64::MAX rather than wrapping.
        let s = Value::Num(u64::MAX as f64).to_json_string();
        assert_eq!(Value::parse(&s).unwrap().as_u64(), Some(u64::MAX));
        // monotonicity across the cliff: readbacks never decrease
        let reads: Vec<u64> = [MAX_EXACT - 1, MAX_EXACT, above, u64::MAX]
            .iter()
            .map(|&v| {
                Value::parse(&Value::Num(v as f64).to_json_string())
                    .unwrap()
                    .as_u64()
                    .unwrap()
            })
            .collect();
        assert!(reads.windows(2).all(|w| w[0] <= w[1]), "{reads:?}");
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "quote\" back\\ nl\n tab\t unicode→ ctrl\u{1}";
        let json = Value::Str(s.to_string()).to_json_string();
        assert_eq!(Value::parse(&json).unwrap().as_str(), Some(s));
    }

    #[test]
    fn unicode_escape_parses() {
        assert_eq!(Value::parse(r#""é😀""#).unwrap().as_str(), Some("é😀"));
    }

    #[test]
    fn writer_round_trips_document() {
        let doc = Value::obj(vec![
            ("name", Value::Str("privim".into())),
            ("eps", Value::Arr(vec![Value::Num(1.0), Value::Num(2.5)])),
            ("private", Value::Bool(true)),
            ("note", Value::Null),
        ]);
        for s in [doc.to_json_string(), doc.to_json_string_pretty()] {
            assert_eq!(Value::parse(&s).unwrap(), doc);
        }
    }

    #[test]
    fn to_json_impls_compose() {
        let v = vec![Some(1.5f64), None];
        assert_eq!(v.to_json().to_json_string(), "[1.5,null]");
        assert_eq!("x".to_json(), Value::Str("x".into()));
        assert_eq!(42u64.to_json(), Value::Num(42.0));
    }
}

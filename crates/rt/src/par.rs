//! Persistent worker-pool primitives replacing `rayon` in the workspace's
//! hot paths (Monte-Carlo diffusion, RR-set sampling, per-sample gradients,
//! tensor kernels).
//!
//! Work is split into contiguous index chunks, one per worker, dispatched
//! to a **lazily-initialized persistent pool** (a global job queue drained
//! by detached worker threads), and re-assembled in input order — so every
//! result is bit-identical to the sequential run regardless of the thread
//! count (`tests/determinism.rs` pins this end to end). Earlier revisions
//! spawned and joined fresh OS threads inside every call via
//! `std::thread::scope`; the pool amortises that cost to a queue push, which
//! is what makes parallelism affordable *inside* tensor kernels rather than
//! only around whole batches.
//!
//! ## Scheduling model
//!
//! * One global FIFO of jobs (`Mutex<VecDeque>` + `Condvar`). Workers are
//!   spawned on demand, up to the largest width any call has requested
//!   (capped), and then live for the process lifetime.
//! * The calling thread always executes chunk 0 itself, then **helps**:
//!   while its remaining chunks are unfinished it drains jobs from the
//!   queue (its own or foreign) instead of blocking. This keeps a 1-core
//!   box truthful (no forced context switches), and makes *nested*
//!   parallel calls deadlock-free: a worker that issues a parallel call
//!   from inside a job drains its own sub-jobs rather than waiting on a
//!   slot that may never free up.
//! * Completion is tracked by a per-call latch; a panicking chunk is
//!   caught, recorded, and re-raised on the calling thread after every
//!   sibling chunk has finished (so borrowed data is never freed while a
//!   worker can still touch it).
//!
//! Which thread runs a chunk never affects results: chunk boundaries
//! depend only on `n` and the resolved thread count, and reductions
//! combine chunk results in chunk order.
//!
//! Thread-count resolution order (re-read on every call, so the pool
//! survives `set_threads` changes mid-process):
//! 1. [`set_threads`] override (tests, embedders),
//! 2. the `PRIVIM_THREADS` environment variable,
//! 3. `std::thread::available_parallelism()`.
//!
//! `PRIVIM_THREADS=1` (or a single-core box) short-circuits to a plain
//! sequential loop with zero thread overhead.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Upper bound on pool size; callers asking for more still get correct
/// results (the caller helps drain the queue), just not more OS threads.
const MAX_WORKERS: usize = 192;

/// Force the worker count (`0` clears the override and returns to
/// `PRIVIM_THREADS` / detected parallelism). Takes effect for subsequent
/// calls; in-flight calls are unaffected. Already-spawned pool workers are
/// kept parked, not torn down — lowering the count only narrows chunking.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The worker count the next parallel call will use.
pub fn num_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("PRIVIM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

// ---------------------------------------------------------------------------
// Pool internals
// ---------------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    queue: Mutex<VecDeque<Job>>,
    work_available: Condvar,
    /// Workers spawned so far (monotone, ≤ MAX_WORKERS).
    spawned: AtomicUsize,
    /// Serialises spawning so two racing calls don't over-spawn.
    spawn_lock: Mutex<()>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        work_available: Condvar::new(),
        spawned: AtomicUsize::new(0),
        spawn_lock: Mutex::new(()),
    })
}

/// Poison-tolerant lock: jobs are wrapped in `catch_unwind`, so a poisoned
/// mutex can only mean a panic *between* jobs, where the protected state is
/// still consistent — recover the guard instead of propagating.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Grow the pool (best-effort) so at least `target` workers exist. Spawn
/// failure is tolerated: correctness never depends on workers existing,
/// because the caller drains its own jobs while waiting.
fn ensure_workers(target: usize) {
    let p = pool();
    let target = target.min(MAX_WORKERS);
    if p.spawned.load(Ordering::Relaxed) >= target {
        return;
    }
    let _g = lock(&p.spawn_lock);
    while p.spawned.load(Ordering::Relaxed) < target {
        let spawned = std::thread::Builder::new()
            .name("privim-par".to_string())
            .spawn(worker_loop);
        match spawned {
            Ok(_handle) => {
                p.spawned.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => break, // resource exhaustion: run with what we have
        }
    }
}

/// Detached worker: pop a job or park on the condvar, forever. Jobs carry
/// their own panic handling, so this loop cannot unwind.
fn worker_loop() {
    let p = pool();
    loop {
        let job = {
            let mut q = lock(&p.queue);
            loop {
                if let Some(j) = q.pop_front() {
                    break j;
                }
                q = p
                    .work_available
                    .wait(q)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        job();
    }
}

/// Per-call completion latch. Counts outstanding *pool-dispatched* chunks
/// (the caller's own chunk 0 is not counted — it runs inline).
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Latch {
    fn new(count: usize) -> Latch {
        Latch {
            remaining: Mutex::new(count),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn complete(&self) {
        let mut r = lock(&self.remaining);
        *r -= 1;
        if *r == 0 {
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        *lock(&self.remaining) == 0
    }

    /// Block until every dispatched chunk finished (no helping; callers
    /// only reach this once the queue holds none of their jobs).
    fn wait(&self) {
        let mut r = lock(&self.remaining);
        while *r > 0 {
            r = self
                .done
                .wait(r)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = lock(&self.panic);
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send>> {
        lock(&self.panic).take()
    }
}

/// Execute `run_chunk(t)` for every `t in 0..chunks`: chunk 0 inline on the
/// caller, chunks 1.. on the pool. Returns only after *every* chunk has
/// finished, so `run_chunk` may borrow from the caller's stack. A panic in
/// any chunk is re-raised here once all siblings are done.
fn run_on_pool<F>(chunks: usize, run_chunk: F)
where
    F: Fn(usize) + Sync,
{
    if chunks <= 1 {
        run_chunk(0);
        return;
    }
    ensure_workers(chunks - 1);
    let latch = Latch::new(chunks - 1);

    // SAFETY: the borrowed closure and latch are promoted to 'static only
    // for the queue's benefit; this function does not return until the
    // latch confirms every dispatched job has run to completion (panicking
    // or not), so no job can outlive the borrows it captures.
    let f_ref: &(dyn Fn(usize) + Sync) = &run_chunk;
    let f_static: &'static (dyn Fn(usize) + Sync) =
        // privim-lint: allow(unsafe, reason = "lifetime erasure only, no type change: the closure ref outlives every queued job because the latch below blocks this frame until all jobs finish, panicking or not")
        unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(f_ref) };
    // privim-lint: allow(unsafe, reason = "same promotion as f_static: workers' last touch of the latch is the count_down this frame's wait() blocks on, so the borrow cannot dangle")
    let latch_static: &'static Latch = unsafe { std::mem::transmute::<&Latch, _>(&latch) };

    {
        let p = pool();
        let mut q = lock(&p.queue);
        for t in 1..chunks {
            q.push_back(Box::new(move || {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f_static(t))) {
                    latch_static.record_panic(payload);
                }
                latch_static.complete();
            }));
        }
        p.work_available.notify_all();
    }

    // The caller's own chunk. Deferring the unwind keeps the safety
    // argument intact: siblings still borrow the stack.
    let mine = catch_unwind(AssertUnwindSafe(|| run_chunk(0)));

    // Help-then-wait: drain queued jobs (ours or a nested call's) while our
    // chunks are outstanding; once the queue is empty every remaining chunk
    // of ours is already running on some thread, so blocking is safe.
    while !latch.is_done() {
        let job = lock(&pool().queue).pop_front();
        match job {
            Some(job) => job(),
            None => latch.wait(),
        }
    }

    if let Err(payload) = mine {
        resume_unwind(payload);
    }
    if let Some(payload) = latch.take_panic() {
        resume_unwind(payload);
    }
}

/// The `(threads, chunk_len)` split a parallel call over `n` items uses —
/// shared by every primitive so the partition (and therefore the reduction
/// order) is identical everywhere.
fn split(n: usize) -> (usize, usize) {
    let threads = num_threads().min(n.max(1));
    (threads, n.div_ceil(threads.max(1)))
}

// ---------------------------------------------------------------------------
// Public primitives
// ---------------------------------------------------------------------------

/// `(0..n).map(f)` evaluated on the pool; results in index order.
pub fn map_range<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let (threads, chunk) = split(n);
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let slots: Vec<Mutex<Option<Vec<U>>>> = (0..threads).map(|_| Mutex::new(None)).collect();
    run_on_pool(threads, |t| {
        let lo = t * chunk;
        let hi = ((t + 1) * chunk).min(n);
        let part: Vec<U> = (lo..hi).map(&f).collect();
        *lock(&slots[t]) = Some(part);
    });
    let mut out: Vec<U> = Vec::with_capacity(n);
    for slot in slots {
        // Chunk-order reassembly; a missing slot is impossible because a
        // panicking chunk was already re-raised by `run_on_pool`.
        if let Some(part) = lock(&slot).take() {
            out.extend(part);
        }
    }
    out
}

/// Parallel map over a slice; results in input order.
pub fn map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    map_range(items.len(), |i| f(&items[i]))
}

/// Parallel `(0..n).map(f).sum()` — each worker folds its chunk locally,
/// the chunk sums are added in chunk order (deterministic for a fixed
/// thread count; exactly associative reductions — integers — are identical
/// at *any* thread count).
pub fn sum_range<U, F>(n: usize, f: F) -> U
where
    U: Send + std::iter::Sum<U>,
    F: Fn(usize) -> U + Sync,
{
    sum_chunks(n, |range| range.map(&f).sum())
}

/// Chunk-level parallel sum: `f` folds one contiguous index range and may
/// keep per-chunk scratch state alive across its items (the Monte-Carlo
/// loops reuse their visited-buffers this way). Chunk sums are combined in
/// chunk order. The partition depends on the thread count, so use this only
/// for reductions that are exactly associative (integer sums) or tolerant
/// of regrouping.
pub fn sum_chunks<U, F>(n: usize, f: F) -> U
where
    U: Send + std::iter::Sum<U>,
    F: Fn(std::ops::Range<usize>) -> U + Sync,
{
    let (threads, chunk) = split(n);
    if threads <= 1 || n <= 1 {
        return f(0..n);
    }
    let slots: Vec<Mutex<Option<U>>> = (0..threads).map(|_| Mutex::new(None)).collect();
    run_on_pool(threads, |t| {
        let lo = t * chunk;
        let hi = ((t + 1) * chunk).min(n);
        *lock(&slots[t]) = Some(f(lo..hi));
    });
    slots
        .into_iter()
        .filter_map(|slot| lock(&slot).take())
        .sum()
}

/// Run `f(lo, hi)` over the contiguous chunks of `0..n` that the current
/// thread count implies, in parallel. `f` must only touch state it owns for
/// `lo..hi` (e.g. disjoint output regions reached through raw indexing).
pub fn for_each_chunk<F>(n: usize, f: F)
where
    F: Fn(usize, usize) + Sync,
{
    let (threads, chunk) = split(n);
    if threads <= 1 || n <= 1 {
        f(0, n);
        return;
    }
    run_on_pool(threads, |t| {
        let lo = t * chunk;
        let hi = ((t + 1) * chunk).min(n);
        f(lo, hi);
    });
}

/// Partition a mutable row-major buffer (`data.len() == rows · row_len`)
/// into contiguous row chunks, one per worker, and run
/// `f(first_row, chunk)` on each. Every row is written by exactly one
/// worker, and the row ranges are identical to the serial traversal — the
/// disjointness that keeps row-parallel kernels bit-identical at any
/// thread count.
pub fn for_each_row_chunk<T, F>(data: &mut [T], row_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if row_len == 0 || data.is_empty() {
        return;
    }
    debug_assert_eq!(data.len() % row_len, 0, "ragged row buffer");
    let rows = data.len() / row_len;
    let (threads, chunk) = split(rows);
    if threads <= 1 || rows <= 1 {
        f(0, data);
        return;
    }
    // Pre-split into disjoint &mut chunks; each job takes its own slot.
    let mut parts: Vec<Mutex<Option<(usize, &mut [T])>>> = Vec::with_capacity(threads);
    let mut rest = data;
    let mut row0 = 0usize;
    for t in 0..threads {
        let hi = ((t + 1) * chunk).min(rows);
        let take = (hi - row0) * row_len;
        let (head, tail) = rest.split_at_mut(take);
        parts.push(Mutex::new(Some((row0, head))));
        rest = tail;
        row0 = hi;
    }
    run_on_pool(threads, |t| {
        if let Some((first_row, chunk_data)) = lock(&parts[t]).take() {
            f(first_row, chunk_data);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // `set_threads` is process-global; serialise the tests that poke it so
    // they don't race under the parallel test runner.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn map_range_preserves_order() {
        let _g = LOCK.lock().unwrap();
        set_threads(4);
        let v = map_range(1000, |i| i * i);
        set_threads(0);
        assert_eq!(v, (0..1000).map(|i| i * i).collect::<Vec<usize>>());
    }

    #[test]
    fn map_matches_sequential() {
        let _g = LOCK.lock().unwrap();
        let items: Vec<u64> = (0..257).collect();
        set_threads(3);
        let par: Vec<u64> = map(&items, |&x| x * 3 + 1);
        set_threads(0);
        let seq: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn sum_range_matches_sequential() {
        let _g = LOCK.lock().unwrap();
        for threads in [1usize, 2, 7] {
            set_threads(threads);
            let s: u64 = sum_range(10_001, |i| i as u64);
            assert_eq!(s, 10_001 * 10_000 / 2, "threads = {threads}");
        }
        set_threads(0);
    }

    #[test]
    fn sum_chunks_sees_every_index_once() {
        let _g = LOCK.lock().unwrap();
        for threads in [1usize, 2, 5, 13] {
            set_threads(threads);
            let s: u64 = sum_chunks(1234, |range| {
                // per-chunk scratch state is the point of this API
                let mut local = 0u64;
                for i in range {
                    local += i as u64;
                }
                local
            });
            assert_eq!(s, 1233 * 1234 / 2, "threads = {threads}");
        }
        set_threads(0);
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        let _g = LOCK.lock().unwrap();
        set_threads(8);
        assert!(map_range(0, |i| i).is_empty());
        assert_eq!(map_range(1, |i| i), vec![0]);
        assert_eq!(sum_range(0, |i| i), 0);
        for_each_row_chunk(&mut [] as &mut [u64], 4, |_, _| {});
        set_threads(0);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let _g = LOCK.lock().unwrap();
        set_threads(64);
        assert_eq!(map_range(3, |i| i + 1), vec![1, 2, 3]);
        set_threads(0);
    }

    #[test]
    fn override_wins_over_env() {
        let _g = LOCK.lock().unwrap();
        set_threads(2);
        assert_eq!(num_threads(), 2);
        set_threads(0);
        assert!(num_threads() >= 1);
    }

    #[test]
    fn for_each_row_chunk_writes_every_row_once() {
        let _g = LOCK.lock().unwrap();
        for threads in [1usize, 2, 3, 7, 16] {
            set_threads(threads);
            let mut data = vec![0u64; 33 * 5];
            for_each_row_chunk(&mut data, 5, |first_row, chunk| {
                for (r, row) in chunk.chunks_mut(5).enumerate() {
                    for (c, x) in row.iter_mut().enumerate() {
                        *x += ((first_row + r) * 10 + c) as u64;
                    }
                }
            });
            for r in 0..33 {
                for c in 0..5 {
                    assert_eq!(data[r * 5 + c], (r * 10 + c) as u64, "threads={threads}");
                }
            }
        }
        set_threads(0);
    }

    #[test]
    fn nested_parallel_calls_complete() {
        let _g = LOCK.lock().unwrap();
        set_threads(4);
        // inner parallel map issued from inside pool jobs: the caller-helps
        // loop must keep making progress even with every worker occupied.
        let outer = map_range(8, |i| {
            let inner: u64 = sum_range(100, |j| (i * j) as u64);
            inner
        });
        set_threads(0);
        let expect: Vec<u64> = (0..8).map(|i| (i as u64) * 4950).collect();
        assert_eq!(outer, expect);
    }

    #[test]
    fn pool_survives_thread_count_changes() {
        let _g = LOCK.lock().unwrap();
        for threads in [2usize, 7, 1, 4, 16, 3] {
            set_threads(threads);
            let v = map_range(100, |i| i * 2);
            assert_eq!(v, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        }
        set_threads(0);
    }

    #[test]
    fn worker_panic_is_reraised_on_caller() {
        let _g = LOCK.lock().unwrap();
        set_threads(4);
        let result = std::panic::catch_unwind(|| {
            map_range(100, |i| {
                if i == 73 {
                    panic!("boom at {i}");
                }
                i
            })
        });
        set_threads(0);
        assert!(result.is_err(), "panic must propagate to the caller");
        // ...and the pool must still be usable afterwards.
        set_threads(4);
        let v = map_range(50, |i| i + 1);
        set_threads(0);
        assert_eq!(v.len(), 50);
    }
}

//! Scoped thread-pool primitives replacing `rayon` in the workspace's hot
//! paths (Monte-Carlo diffusion, RR-set sampling, per-sample gradients,
//! tensor prep).
//!
//! Work is split into contiguous index chunks, one per worker, executed
//! with `std::thread::scope`, and re-assembled in input order — so every
//! result is bit-identical to the sequential run regardless of the thread
//! count (`tests/determinism.rs` pins this end to end).
//!
//! Thread-count resolution order:
//! 1. [`set_threads`] override (tests, embedders),
//! 2. the `PRIVIM_THREADS` environment variable,
//! 3. `std::thread::available_parallelism()`.
//!
//! `PRIVIM_THREADS=1` (or a single-core box) short-circuits to a plain
//! sequential loop with zero thread overhead.

use std::sync::atomic::{AtomicUsize, Ordering};

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Force the worker count (`0` clears the override and returns to
/// `PRIVIM_THREADS` / detected parallelism). Takes effect for subsequent
/// calls; in-flight scopes are unaffected.
pub fn set_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The worker count the next parallel call will use.
pub fn num_threads() -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var("PRIVIM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// `(0..n).map(f)` evaluated on the pool; results in index order.
pub fn map_range<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let threads = num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<U> = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                s.spawn(move || (lo..hi).map(f).collect::<Vec<U>>())
            })
            .collect();
        for h in handles {
            // privim-lint: allow(panic, reason = "join fails only if the worker panicked; re-raising the panic on the caller thread is the contract")
            out.extend(h.join().expect("privim-rt worker panicked"));
        }
    });
    out
}

/// Parallel map over a slice; results in input order.
pub fn map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    map_range(items.len(), |i| f(&items[i]))
}

/// Parallel `(0..n).map(f).sum()` — each worker folds its chunk locally,
/// the chunk sums are added in chunk order (deterministic).
pub fn sum_range<U, F>(n: usize, f: F) -> U
where
    U: Send + std::iter::Sum<U>,
    F: Fn(usize) -> U + Sync,
{
    let threads = num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).sum();
    }
    let chunk = n.div_ceil(threads);
    let mut partials: Vec<U> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                s.spawn(move || (lo..hi).map(f).sum::<U>())
            })
            .collect();
        for h in handles {
            // privim-lint: allow(panic, reason = "join fails only if the worker panicked; re-raising the panic on the caller thread is the contract")
            partials.push(h.join().expect("privim-rt worker panicked"));
        }
    });
    partials.into_iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // `set_threads` is process-global; serialise the tests that poke it so
    // they don't race under the parallel test runner.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn map_range_preserves_order() {
        let _g = LOCK.lock().unwrap();
        set_threads(4);
        let v = map_range(1000, |i| i * i);
        set_threads(0);
        assert_eq!(v, (0..1000).map(|i| i * i).collect::<Vec<usize>>());
    }

    #[test]
    fn map_matches_sequential() {
        let _g = LOCK.lock().unwrap();
        let items: Vec<u64> = (0..257).collect();
        set_threads(3);
        let par: Vec<u64> = map(&items, |&x| x * 3 + 1);
        set_threads(0);
        let seq: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn sum_range_matches_sequential() {
        let _g = LOCK.lock().unwrap();
        for threads in [1usize, 2, 7] {
            set_threads(threads);
            let s: u64 = sum_range(10_001, |i| i as u64);
            assert_eq!(s, 10_001 * 10_000 / 2, "threads = {threads}");
        }
        set_threads(0);
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        let _g = LOCK.lock().unwrap();
        set_threads(8);
        assert!(map_range(0, |i| i).is_empty());
        assert_eq!(map_range(1, |i| i), vec![0]);
        assert_eq!(sum_range(0, |i| i), 0);
        set_threads(0);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let _g = LOCK.lock().unwrap();
        set_threads(64);
        assert_eq!(map_range(3, |i| i + 1), vec![1, 2, 3]);
        set_threads(0);
    }

    #[test]
    fn override_wins_over_env() {
        let _g = LOCK.lock().unwrap();
        set_threads(2);
        assert_eq!(num_threads(), 2);
        set_threads(0);
        assert!(num_threads() >= 1);
    }
}

//! The workspace-wide typed error, [`PrivimError`].
//!
//! Library entry points that used to `assert!`/`panic!` on bad input now
//! return `Result<_, PrivimError>` so the experiment harness can isolate,
//! retry, and report failures instead of dying mid-suite. The taxonomy is
//! deliberately small — callers dispatch on *recoverability*, not on the
//! precise site that failed:
//!
//! | variant | meaning | recoverable? |
//! |---|---|---|
//! | [`PrivimError::InvalidInput`] | caller bug (bad config, mismatched lengths) | no — fix the call |
//! | [`PrivimError::EmptyInput`] | degenerate data (empty graph/container) | no — skip the cell |
//! | [`PrivimError::Diverged`] | DP-SGD exhausted its recovery budget | no — raise `max_recoveries` or lower `lr` |
//! | [`PrivimError::Io`] | filesystem failure | yes — retry with backoff |
//! | [`PrivimError::InjectedFault`] | deterministic fault injection fired | yes — retry |

use std::fmt;

/// Shorthand for `Result<T, PrivimError>`.
pub type PrivimResult<T> = Result<T, PrivimError>;

/// The typed error shared by every crate in the workspace.
#[derive(Debug)]
pub enum PrivimError {
    /// A caller-side contract violation: invalid configuration values,
    /// mismatched vector lengths, out-of-range parameters.
    InvalidInput(String),
    /// Structurally valid but degenerate input that the operation cannot
    /// produce a meaningful result for (empty graph, empty container).
    EmptyInput(String),
    /// DP-SGD detected non-finite state more often than its bounded
    /// recovery budget allows. The privacy spend of all attempted steps
    /// has already been charged when this is returned.
    Diverged {
        /// Iteration at which the recovery budget ran out.
        step: u64,
        /// Recovery attempts consumed before giving up.
        recoveries: u32,
        /// What the sentinel kept observing (e.g. "non-finite gradient").
        message: String,
    },
    /// A filesystem operation failed.
    Io {
        /// What was being attempted (usually a path).
        context: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// A deterministic fault point fired (see [`crate::fault`]). Only ever
    /// produced under an active fault plan; treated as transient by the
    /// experiment runner so retry paths are exercised.
    InjectedFault {
        /// Name of the fault point that fired.
        point: String,
    },
    /// Malformed serialized data (JSON results, checkpoints).
    Parse(String),
}

impl PrivimError {
    /// Convenience constructor for [`PrivimError::InvalidInput`].
    pub fn invalid(msg: impl Into<String>) -> Self {
        PrivimError::InvalidInput(msg.into())
    }

    /// Convenience constructor for [`PrivimError::EmptyInput`].
    pub fn empty(msg: impl Into<String>) -> Self {
        PrivimError::EmptyInput(msg.into())
    }

    /// Convenience constructor for [`PrivimError::Io`].
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        PrivimError::Io {
            context: context.into(),
            source,
        }
    }

    /// True for failures worth retrying (transient I/O, injected faults);
    /// false for deterministic failures that would just fail again.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            PrivimError::Io { .. } | PrivimError::InjectedFault { .. }
        )
    }
}

impl fmt::Display for PrivimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrivimError::InvalidInput(m) => write!(f, "invalid input: {m}"),
            PrivimError::EmptyInput(m) => write!(f, "empty input: {m}"),
            PrivimError::Diverged {
                step,
                recoveries,
                message,
            } => write!(
                f,
                "training diverged at step {step} after {recoveries} recovery attempts: {message}"
            ),
            PrivimError::Io { context, source } => write!(f, "io error ({context}): {source}"),
            PrivimError::InjectedFault { point } => {
                write!(f, "injected fault fired: {point}")
            }
            PrivimError::Parse(m) => write!(f, "parse error: {m}"),
        }
    }
}

impl std::error::Error for PrivimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PrivimError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PrivimError {
    fn from(e: std::io::Error) -> Self {
        PrivimError::Io {
            context: String::new(),
            source: e,
        }
    }
}

impl From<crate::json::ParseError> for PrivimError {
    fn from(e: crate::json::ParseError) -> Self {
        PrivimError::Parse(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = PrivimError::invalid("batch must be >= 1");
        assert!(e.to_string().contains("batch must be >= 1"));
        let e = PrivimError::Diverged {
            step: 12,
            recoveries: 8,
            message: "non-finite gradient".into(),
        };
        let s = e.to_string();
        assert!(s.contains("step 12") && s.contains("8 recovery"));
    }

    #[test]
    fn transience_classification() {
        assert!(PrivimError::io("x", std::io::Error::other("boom")).is_transient());
        assert!(PrivimError::InjectedFault { point: "io".into() }.is_transient());
        assert!(!PrivimError::invalid("x").is_transient());
        assert!(!PrivimError::empty("x").is_transient());
    }

    #[test]
    fn io_source_chains() {
        use std::error::Error;
        let e = PrivimError::io("writing results", std::io::Error::other("disk full"));
        assert!(e.source().is_some());
    }

    #[test]
    fn json_parse_error_converts() {
        let bad = crate::json::Value::parse("{oops").unwrap_err();
        let e: PrivimError = bad.into();
        assert!(matches!(e, PrivimError::Parse(_)));
    }
}

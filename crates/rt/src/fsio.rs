//! Fsync-aware file primitives with deterministic I/O fault points.
//!
//! The serving-side durability layer (WAL appends, atomic bundle
//! snapshots) must be exercised against every ugly thing a disk can do:
//! a write that lands only a prefix, a torn record tail, an fsync that
//! reports failure, a crash after a durable write but before the caller
//! acknowledged it. These helpers route every such hazard through
//! [`crate::fault::FaultPlan`] so recovery paths replay bit-identically
//! from a seed instead of depending on real hardware misbehaving on cue.
//!
//! Fault decisions are keyed on a caller-supplied *logical* write index
//! (a journal's append counter, a pack operation's write counter), never
//! on global mutable state — the same contract the rest of
//! [`crate::fault`] keeps.

use crate::fault::{FaultPlan, FaultPoint};
use crate::{PrivimError, PrivimResult};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

fn injected(point: FaultPoint) -> PrivimError {
    PrivimError::InjectedFault {
        point: point.name().to_string(),
    }
}

/// Write `bytes` to `file`, honoring the [`FaultPoint::IoShortWrite`] and
/// [`FaultPoint::IoTornWrite`] points at logical `index`.
///
/// * `IoShortWrite` lands at most 4 bytes — for a length-prefixed record
///   the cut falls *inside* the header, so no complete length field
///   reaches the file.
/// * `IoTornWrite` lands the first 8 bytes (a full header) plus half the
///   remainder — a structurally announced record whose payload is cut
///   short.
///
/// Both then return [`PrivimError::InjectedFault`]; the partial bytes
/// stay in the file exactly as a real torn write would leave them.
pub fn write_all_faulty(
    file: &mut File,
    bytes: &[u8],
    ctx: &str,
    plan: Option<&FaultPlan>,
    index: u64,
) -> PrivimResult<()> {
    if let Some(plan) = plan {
        if plan.fires(FaultPoint::IoShortWrite, index) {
            let cut = bytes.len().min(4);
            file.write_all(&bytes[..cut])
                .map_err(|e| PrivimError::io(ctx.to_string(), e))?;
            return Err(injected(FaultPoint::IoShortWrite));
        }
        if plan.fires(FaultPoint::IoTornWrite, index) {
            let cut = bytes.len().min(8 + bytes.len().saturating_sub(8) / 2);
            file.write_all(&bytes[..cut])
                .map_err(|e| PrivimError::io(ctx.to_string(), e))?;
            return Err(injected(FaultPoint::IoTornWrite));
        }
    }
    file.write_all(bytes)
        .map_err(|e| PrivimError::io(ctx.to_string(), e))
}

/// `fdatasync` the file, honoring [`FaultPoint::IoFsyncFail`] at logical
/// `index`. On an injected failure the bytes remain in the OS page cache
/// (they may or may not survive a real crash) — callers must treat the
/// write as non-durable.
pub fn fsync_faulty(
    file: &File,
    ctx: &str,
    plan: Option<&FaultPlan>,
    index: u64,
) -> PrivimResult<()> {
    if let Some(plan) = plan {
        if plan.fires(FaultPoint::IoFsyncFail, index) {
            return Err(injected(FaultPoint::IoFsyncFail));
        }
    }
    file.sync_data()
        .map_err(|e| PrivimError::io(ctx.to_string(), e))
}

/// Simulated process death *after* a durable write, *before* the caller
/// could acknowledge it ([`FaultPoint::CrashAfterWrite`] at `index`).
/// Returns `Err` with the written state intact — recovery must surface
/// the charge even though no client ever saw a success response.
pub fn crash_point(plan: Option<&FaultPlan>, index: u64) -> PrivimResult<()> {
    if let Some(plan) = plan {
        if plan.fires(FaultPoint::CrashAfterWrite, index) {
            return Err(injected(FaultPoint::CrashAfterWrite));
        }
    }
    Ok(())
}

/// Durable atomic file replacement: write to a temp file in the
/// destination directory, fsync it, rename over `path`, then fsync the
/// directory so the rename itself survives a crash. At every injected
/// fault the target path holds either its old contents or the complete
/// new contents — never a torn mix.
pub fn atomic_write_durable(path: &Path, bytes: &[u8]) -> PrivimResult<()> {
    atomic_write_durable_with_plan(path, bytes, None, 0)
}

/// [`atomic_write_durable`] with an explicit fault plan and logical write
/// index, for deterministic crash-consistency tests.
pub fn atomic_write_durable_with_plan(
    path: &Path,
    bytes: &[u8],
    plan: Option<&FaultPlan>,
    index: u64,
) -> PrivimResult<()> {
    let file_name = match path.file_name().and_then(|n| n.to_str()) {
        Some(n) => n,
        None => {
            return Err(PrivimError::invalid(format!(
                "atomic write target has no file name: {}",
                path.display()
            )))
        }
    };
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => Path::new(".").to_path_buf(),
    };
    let tmp = dir.join(format!("{file_name}.tmp.{}", std::process::id()));
    let ctx = format!("atomic write to {}", path.display());

    let result = (|| {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)
            .map_err(|e| PrivimError::io(ctx.clone(), e))?;
        write_all_faulty(&mut file, bytes, &ctx, plan, index)?;
        fsync_faulty(&file, &ctx, plan, index)?;
        drop(file);
        std::fs::rename(&tmp, path).map_err(|e| PrivimError::io(ctx.clone(), e))?;
        sync_dir(&dir, &ctx)?;
        Ok(())
    })();
    if result.is_err() {
        // The rename never happened (or the fault fired before it); the
        // target still holds its previous contents. Drop the temp file.
        let _ = std::fs::remove_file(&tmp);
        return result;
    }
    // The new contents are fully durable; a crash here loses nothing.
    crash_point(plan, index)
}

/// Fsync a directory so a completed rename inside it is durable. On
/// non-Unix platforms directories cannot be opened for sync; the rename
/// is still atomic, just not crash-ordered, so this degrades to a no-op.
fn sync_dir(dir: &Path, ctx: &str) -> PrivimResult<()> {
    #[cfg(unix)]
    {
        let d = File::open(dir).map_err(|e| PrivimError::io(ctx.to_string(), e))?;
        d.sync_all().map_err(|e| PrivimError::io(ctx.to_string(), e))
    }
    #[cfg(not(unix))]
    {
        let _ = (dir, ctx);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("privim-fsio-{}-{name}", std::process::id()))
    }

    #[test]
    fn short_write_leaves_header_incomplete() {
        let path = tmp_path("short");
        let mut f = File::create(&path).unwrap();
        let plan = FaultPlan::at_step(1, FaultPoint::IoShortWrite, 0);
        let err = write_all_faulty(&mut f, &[7u8; 64], "t", Some(&plan), 0).unwrap_err();
        assert!(matches!(err, PrivimError::InjectedFault { .. }));
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap().len(), 4);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_write_leaves_header_plus_partial_payload() {
        let path = tmp_path("torn");
        let mut f = File::create(&path).unwrap();
        let plan = FaultPlan::at_step(1, FaultPoint::IoTornWrite, 2);
        write_all_faulty(&mut f, &[1u8; 64], "t", Some(&plan), 0).unwrap();
        let err = write_all_faulty(&mut f, &[2u8; 64], "t", Some(&plan), 2).unwrap_err();
        assert!(matches!(err, PrivimError::InjectedFault { .. }));
        drop(f);
        // 64 good bytes + 8 header + half of the 56 remaining.
        assert_eq!(std::fs::read(&path).unwrap().len(), 64 + 8 + 28);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unfired_indices_write_everything() {
        let path = tmp_path("clean");
        let mut f = File::create(&path).unwrap();
        let plan = FaultPlan::at_step(1, FaultPoint::IoShortWrite, 9);
        write_all_faulty(&mut f, &[3u8; 100], "t", Some(&plan), 0).unwrap();
        fsync_faulty(&f, "t", Some(&plan), 0).unwrap();
        crash_point(Some(&plan), 0).unwrap();
        drop(f);
        assert_eq!(std::fs::read(&path).unwrap(), vec![3u8; 100]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn atomic_write_replaces_contents() {
        let path = tmp_path("atomic");
        std::fs::write(&path, b"old").unwrap();
        atomic_write_durable(&path, b"new contents").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"new contents");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn atomic_write_under_faults_is_old_or_new_never_torn() {
        let path = tmp_path("atomic-faults");
        for point in [
            FaultPoint::IoShortWrite,
            FaultPoint::IoTornWrite,
            FaultPoint::IoFsyncFail,
            FaultPoint::CrashAfterWrite,
        ] {
            std::fs::write(&path, b"old-bundle").unwrap();
            let plan = FaultPlan::at_step(3, point, 0);
            let res =
                atomic_write_durable_with_plan(&path, b"new-bundle", Some(&plan), 0);
            assert!(
                matches!(res, Err(PrivimError::InjectedFault { .. })),
                "{} must surface as an injected fault",
                point.name()
            );
            let got = std::fs::read(&path).unwrap();
            if point == FaultPoint::CrashAfterWrite {
                // Crash fired after the rename: the new file is durable.
                assert_eq!(got, b"new-bundle");
            } else {
                assert_eq!(got, b"old-bundle", "{} tore the target", point.name());
            }
            // No temp litter either way.
            let tmp = path.with_file_name(format!(
                "{}.tmp.{}",
                path.file_name().unwrap().to_str().unwrap(),
                std::process::id()
            ));
            assert!(!tmp.exists(), "temp file left behind for {}", point.name());
        }
        std::fs::remove_file(&path).unwrap();
    }
}

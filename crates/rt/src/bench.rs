//! A fixed-iteration micro-benchmark harness replacing `criterion`.
//!
//! No statistics machinery — each case runs a warm-up slice followed by a
//! fixed measured iteration count and prints mean ns/iter. That is enough
//! to compare hot-path changes between commits while keeping the workspace
//! dependency-free; `scripts/ci.sh` builds the benches but does not gate
//! on their numbers.

use std::time::Instant;

/// Re-export of the compiler optimisation barrier, for bench closures.
pub use std::hint::black_box;

/// One benchmark group, printed as an aligned table.
pub struct Bench {
    group: String,
    iters: u64,
}

impl Bench {
    /// A group with the default iteration budget (read from
    /// `PRIVIM_BENCH_ITERS`, default 30 — the experiment kernels here are
    /// milliseconds-scale, not nanoseconds-scale).
    pub fn new(group: &str) -> Self {
        let iters = std::env::var("PRIVIM_BENCH_ITERS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(30);
        Self::with_iters(group, iters)
    }

    /// A group with an explicit measured iteration count.
    pub fn with_iters(group: &str, iters: u64) -> Self {
        assert!(iters >= 1);
        println!("## {group}");
        Bench {
            group: group.to_string(),
            iters,
        }
    }

    /// Run one case: warm-up (10% of the budget, at least one run), then
    /// `iters` measured runs; prints mean time per iteration.
    pub fn case<T>(&mut self, name: &str, f: impl FnMut() -> T) -> &mut Self {
        let per_iter = time_iters(self.iters, f);
        println!(
            "{:<48} {:>14}  ({} iters)",
            format!("{}/{}", self.group, name),
            fmt_duration(per_iter),
            self.iters
        );
        self
    }

    /// The group's measured iteration count.
    pub fn iters(&self) -> u64 {
        self.iters
    }
}

/// Time `f`: warm-up (10% of `iters`, at least one run) followed by `iters`
/// measured runs; returns the mean seconds per iteration. This is the
/// building block behind [`Bench::case`] and the only wall-clock read the
/// workspace's library code performs — bench binaries that need raw numbers
/// (e.g. to emit machine-readable JSON) call it instead of `Instant`.
pub fn time_iters<T>(iters: u64, mut f: impl FnMut() -> T) -> f64 {
    assert!(iters >= 1);
    for _ in 0..(iters / 10).max(1) {
        black_box(f());
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    t0.elapsed().as_secs_f64() / iters as f64
}

fn fmt_duration(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_cases_and_counts_calls() {
        let mut calls = 0u64;
        Bench::with_iters("test", 5).case("count", || {
            calls += 1;
        });
        // 5 measured + ceil(5/10)=1 warm-up? (5/10).max(1) = 1 warm-up
        assert_eq!(calls, 6);
    }

    #[test]
    fn duration_formatting_picks_sane_units() {
        assert!(fmt_duration(5e-9).ends_with("ns"));
        assert!(fmt_duration(5e-6).ends_with("µs"));
        assert!(fmt_duration(5e-3).ends_with("ms"));
        assert!(fmt_duration(2.0).ends_with('s'));
    }
}

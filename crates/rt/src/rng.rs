//! RNG traits and sampling helpers.
//!
//! Mirrors the subset of the `rand` 0.8 API the workspace uses so the
//! migration off crates.io stayed mechanical: [`RngCore`] is the
//! object-safe word source, [`Rng`] adds the generic sampling methods via a
//! blanket impl, [`SeedableRng`] provides `seed_from_u64`, and
//! [`SliceRandom`] provides Fisher–Yates `shuffle`/`choose`. The [`dist`]
//! module holds the distributions DP noise generation needs.

/// Low-level word source. Object-safe; implemented by the ChaCha RNGs and
/// by `&mut R` so generators can be passed down call chains.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Build from a full 256-bit seed.
    fn from_seed(seed: [u8; 32]) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64 (the standard
    /// seed-expansion PRF; consecutive integer seeds give uncorrelated
    /// streams, which the per-run `seed + i` pattern in the Monte-Carlo
    /// code relies on).
    fn seed_from_u64(state: u64) -> Self {
        let mut s = state;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_exact_mut(8) {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly from the generator's "natural" range:
/// `[0, 1)` for floats, the full domain for integers.
pub trait UniformSample: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits -> [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl UniformSample for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl UniformSample for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl UniformSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

/// Uniform `u64` in `[0, span)` via Lemire's widening-multiply method with
/// rejection (exactly uniform, no modulo bias).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// Ranges [`Rng::gen_range`] accepts (half-open and inclusive, integer and
/// float).
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_range_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as UniformSample>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as UniformSample>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_range_impl!(f32, f64);

/// High-level sampling methods, available on every [`RngCore`] through a
/// blanket impl.
pub trait Rng: RngCore {
    /// Uniform sample from the type's natural range (`[0, 1)` for floats).
    #[inline]
    fn gen<T: UniformSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from `range` (`lo..hi` or `lo..=hi`).
    #[inline]
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Random slice operations (Fisher–Yates shuffle, uniform choice).
pub trait SliceRandom {
    /// Element type.
    type Item;
    /// In-place uniform shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    /// Uniformly chosen element (`None` on an empty slice).
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_below(rng, self.len() as u64) as usize])
        }
    }
}

/// Distributions used for DP noise and weight initialisation.
pub mod dist {
    use super::{Rng, RngCore, UniformSample};

    /// One standard normal draw via Box–Muller.
    pub fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        loop {
            let u1 = f64::sample(rng);
            if u1 <= f64::MIN_POSITIVE {
                continue;
            }
            let u2 = f64::sample(rng);
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }

    /// `N(mean, std²)` draw.
    pub fn gaussian<R: RngCore + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
        mean + standard_normal(rng) * std
    }

    /// Bernoulli draw with success probability `p`.
    pub fn bernoulli<R: RngCore>(rng: &mut R, p: f64) -> bool {
        rng.gen_bool(p)
    }

    /// `Exp(1)` draw via inverse CDF.
    pub fn exponential<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        let u = f64::sample(rng);
        -(1.0 - u).max(f64::MIN_POSITIVE).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chacha::ChaCha8Rng;

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let a = rng.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&b));
            let c = rng.gen_range(-2.5f64..=2.5);
            assert!((-2.5..=2.5).contains(&c));
        }
    }

    #[test]
    fn gen_range_hits_every_bucket() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    /// Chi-squared uniformity of `gen_range` over 16 buckets at n = 100k.
    /// df = 15; the 99.9% quantile is 37.7 — a seeded run far above that
    /// means the integer sampler is biased.
    #[test]
    fn gen_range_chi_squared_uniformity() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        const BUCKETS: usize = 16;
        const N: usize = 100_000;
        let mut counts = [0u64; BUCKETS];
        for _ in 0..N {
            counts[rng.gen_range(0usize..BUCKETS)] += 1;
        }
        let expected = N as f64 / BUCKETS as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - expected;
                d * d / expected
            })
            .sum();
        assert!(chi2 < 37.7, "chi-squared {chi2} over 99.9% bound");
    }

    /// Gaussian sampler moments at n = 100k: SE(mean) ≈ 0.0032,
    /// SE(var) ≈ 0.0045 — the 5σ tolerances below fail only on a broken
    /// sampler, not on an unlucky seed.
    #[test]
    fn gaussian_mean_and_variance_within_tolerance() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        const N: usize = 100_000;
        let xs: Vec<f64> = (0..N).map(|_| dist::standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / N as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / N as f64;
        assert!(mean.abs() < 0.016, "mean {mean}");
        assert!((var - 1.0).abs() < 0.023, "var {var}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn exponential_has_unit_mean() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let n = 100_000;
        let mean = (0..n).map(|_| dist::exponential(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn shuffle_positions_are_roughly_uniform() {
        // element 0's final position averaged over many shuffles ~ (n-1)/2
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let n = 10usize;
        let trials = 20_000;
        let mut total = 0usize;
        for _ in 0..trials {
            let mut v: Vec<usize> = (0..n).collect();
            v.shuffle(&mut rng);
            total += v.iter().position(|&x| x == 0).unwrap();
        }
        let mean = total as f64 / trials as f64;
        assert!((mean - 4.5).abs() < 0.1, "mean position {mean}");
    }

    #[test]
    fn choose_covers_all_and_handles_empty() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let v = [10, 20, 30];
        let mut seen = [false; 3];
        for _ in 0..200 {
            let &x = v.choose(&mut rng).unwrap();
            seen[x / 10 - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn rng_works_through_mut_references() {
        fn take(rng: &mut impl Rng) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let a = take(&mut rng);
        let b = take(&mut &mut rng);
        assert_ne!(a, b);
    }
}

//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`).
//!
//! Checkpoint and bundle files carry a checksum over their payload so a
//! truncated or bit-flipped file is rejected with a typed error instead of
//! being half-parsed into a wrong model. The classic byte-at-a-time table
//! algorithm is plenty: checkpoints are kilobytes-to-megabytes and written
//! once per training run.
//!
//! The table is built at compile time (`const fn`), so there is no runtime
//! initialisation and no locking.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of `bytes` (same value as zlib's `crc32` / POSIX `cksum -o 3`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for the IEEE CRC-32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = b"privim checkpoint payload".to_vec();
        let reference = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut corrupted = base.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), reference, "flip at {byte}:{bit}");
            }
        }
    }

    #[test]
    fn sensitive_to_truncation() {
        let base = b"0123456789abcdef".to_vec();
        let reference = crc32(&base);
        for cut in 0..base.len() {
            assert_ne!(crc32(&base[..cut]), reference, "truncated to {cut}");
        }
    }
}

//! Precomputed message-passing operators per graph.
//!
//! Building these once per subgraph (they are pure functions of the
//! adjacency) keeps the per-step training cost at the dense math only.

use privim_graph::Graph;
use privim_tensor::SparseMatrix;
use std::sync::Arc;

/// All sparse operators and edge lists a [`crate::GnnModel`] forward pass
/// can need, derived from one graph.
pub struct GraphTensors {
    /// Node count.
    pub n: usize,
    /// IC-weighted in-adjacency (Eq. 2): row `u` holds `w_vu` for in-arcs
    /// `v → u`. Drives the diffusion upper bound in the loss (Theorem 2).
    pub adj_ic: Arc<SparseMatrix>,
    /// Loss diffusion operator (Theorem 2 / Eq. 5): `adj_ic` plus unit
    /// self-loops, so a seed counts itself as influenced — matching the
    /// evaluation's `|S ∪ N⁺(S)|` coverage semantics.
    pub adj_loss: Arc<SparseMatrix>,
    /// GCN operator (Eq. 31 plus self-loops): `Â[u][v] = 1/√(d̃_u d̃_v)`
    /// over in-arcs and self-loops, `d̃ = in-degree + 1`.
    pub adj_gcn: Arc<SparseMatrix>,
    /// Row-normalised in-adjacency (mean aggregator, GraphSAGE Eq. 29).
    pub adj_mean: Arc<SparseMatrix>,
    /// Plain 0/1 in-adjacency (sum aggregator, GIN Eq. 41).
    pub adj_sum: Arc<SparseMatrix>,
    /// Attention arcs: sources per arc, *including* one self-loop per node
    /// (standard GAT practice so isolated nodes keep a message).
    pub att_src: Arc<Vec<u32>>,
    /// Attention arcs: targets per arc (parallel to `att_src`).
    pub att_dst: Arc<Vec<u32>>,
}

impl GraphTensors {
    /// Precompute every operator for `g`.
    pub fn new(g: &Graph) -> Self {
        let n = g.num_nodes();

        let mut ic = Vec::new();
        let mut mean = Vec::new();
        let mut sum = Vec::new();
        for u in 0..n {
            let srcs = g.in_neighbors(u as u32);
            let ws = g.in_weights(u as u32);
            let deg = srcs.len().max(1) as f64;
            for (i, &v) in srcs.iter().enumerate() {
                ic.push((u, v as usize, ws[i]));
                mean.push((u, v as usize, 1.0 / deg));
                sum.push((u, v as usize, 1.0));
            }
        }

        // GCN: symmetric-ish normalisation on the in-adjacency + self loops.
        let dt: Vec<f64> = (0..n).map(|u| (g.in_degree(u as u32) + 1) as f64).collect();
        let mut gcn = Vec::new();
        for u in 0..n {
            gcn.push((u, u, 1.0 / dt[u]));
            for &v in g.in_neighbors(u as u32) {
                gcn.push((u, v as usize, 1.0 / (dt[u] * dt[v as usize]).sqrt()));
            }
        }

        // Attention arcs (src -> dst) plus self loops.
        let mut att_src = Vec::with_capacity(g.num_arcs() + n);
        let mut att_dst = Vec::with_capacity(g.num_arcs() + n);
        for (u, v, _) in g.arcs() {
            att_src.push(u);
            att_dst.push(v);
        }
        for v in 0..n as u32 {
            att_src.push(v);
            att_dst.push(v);
        }

        GraphTensors {
            n,
            adj_ic: Arc::new(SparseMatrix::from_triplets(n, n, ic.clone())),
            adj_loss: {
                let mut with_self = ic;
                for u in 0..n {
                    with_self.push((u, u, 1.0));
                }
                Arc::new(SparseMatrix::from_triplets(n, n, with_self))
            },
            adj_gcn: Arc::new(SparseMatrix::from_triplets(n, n, gcn)),
            adj_mean: Arc::new(SparseMatrix::from_triplets(n, n, mean)),
            adj_sum: Arc::new(SparseMatrix::from_triplets(n, n, sum)),
            att_src: Arc::new(att_src),
            att_dst: Arc::new(att_dst),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_graph::GraphBuilder;
    use privim_tensor::Matrix;

    fn path() -> Graph {
        // 0 -> 1 -> 2, weights .5/.25
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1, 0.5);
        b.add_edge(1, 2, 0.25);
        b.build()
    }

    #[test]
    fn ic_adjacency_is_in_oriented() {
        let gt = GraphTensors::new(&path());
        let d = gt.adj_ic.to_dense();
        assert_eq!(d.get(1, 0), 0.5); // arc 0->1 lands in row 1
        assert_eq!(d.get(2, 1), 0.25);
        assert_eq!(d.get(0, 1), 0.0);
    }

    #[test]
    fn mean_rows_sum_to_one_or_zero() {
        let gt = GraphTensors::new(&path());
        let ones = Matrix::full(3, 1, 1.0);
        let row_sums = gt.adj_mean.spmm(&ones);
        assert_eq!(row_sums.get(0, 0), 0.0); // no in-neighbours
        assert_eq!(row_sums.get(1, 0), 1.0);
        assert_eq!(row_sums.get(2, 0), 1.0);
    }

    #[test]
    fn gcn_has_self_loops() {
        let gt = GraphTensors::new(&path());
        let d = gt.adj_gcn.to_dense();
        for v in 0..3 {
            assert!(d.get(v, v) > 0.0, "self loop missing at {v}");
        }
        // normalisation: entry (1,0) = 1/sqrt(d1*d0) = 1/sqrt(2*1)
        assert!((d.get(1, 0) - 1.0 / 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn attention_arcs_include_self_loops() {
        let g = path();
        let gt = GraphTensors::new(&g);
        assert_eq!(gt.att_src.len(), g.num_arcs() + g.num_nodes());
        // every node appears at least once as a target
        for v in 0..3u32 {
            assert!(gt.att_dst.contains(&v));
        }
    }

    #[test]
    fn sum_adjacency_counts_in_neighbors() {
        let gt = GraphTensors::new(&path());
        let ones = Matrix::full(3, 1, 1.0);
        let sums = gt.adj_sum.spmm(&ones);
        assert_eq!(sums.data(), &[0.0, 1.0, 1.0]);
    }
}
#[cfg(test)]
mod loss_operator_tests {
    use super::*;
    use privim_graph::GraphBuilder;
    use privim_tensor::Matrix;

    #[test]
    fn adj_loss_adds_unit_self_loops() {
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1, 0.5);
        let g = b.build();
        let gt = GraphTensors::new(&g);
        let d = gt.adj_loss.to_dense();
        for v in 0..3 {
            assert_eq!(d.get(v, v), 1.0, "self loop at {v}");
        }
        assert_eq!(d.get(1, 0), 0.5);
        // binary seed vector p = e_0: influenced = {0 (self), 1 (via arc, capped)}
        let p = Matrix::col_vector(&[1.0, 0.0, 0.0]);
        let inf = gt.adj_loss.spmm(&p);
        assert_eq!(inf.data(), &[1.0, 0.5, 0.0]);
    }
}

//! Structural node features.
//!
//! The public IM datasets carry no node attributes, so (as is standard for
//! GNN-based IM solvers, e.g. the EGN line of work) the input feature
//! matrix `X` is built from local structure:
//!
//! 1. a constant bias `1`,
//! 2. `log(1 + out-degree)`, normalised by the graph's max,
//! 3. `log(1 + in-degree)`, normalised by the graph's max.
//!
//! The degree features break node symmetry for aggregators that preserve
//! constants (mean aggregation in GraphSAGE, target-normalised attention in
//! GAT); everything beyond one-hop degree must still be inferred through
//! message passing.

use privim_graph::Graph;
use privim_tensor::Matrix;

/// Number of structural features produced by [`node_features`].
pub const FEATURE_DIM: usize = 3;

/// Build the `|V| × FEATURE_DIM` feature matrix for `g`.
pub fn node_features(g: &Graph) -> Matrix {
    let n = g.num_nodes();
    let mut m = Matrix::zeros(n, FEATURE_DIM);
    if n == 0 {
        return m;
    }
    let log_out: Vec<f64> = (0..n)
        .map(|v| (1.0 + g.out_degree(v as u32) as f64).ln())
        .collect();
    let log_in: Vec<f64> = (0..n)
        .map(|v| (1.0 + g.in_degree(v as u32) as f64).ln())
        .collect();
    let max = |xs: &[f64]| xs.iter().cloned().fold(f64::MIN_POSITIVE, f64::max);
    let (mo, mi) = (max(&log_out), max(&log_in));
    for v in 0..n {
        m.set(v, 0, 1.0);
        m.set(v, 1, log_out[v] / mo);
        m.set(v, 2, log_in[v] / mi);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_graph::{generators, GraphBuilder};
    use privim_rt::ChaCha8Rng;
    use privim_rt::SeedableRng;

    #[test]
    fn features_are_normalised() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = generators::barabasi_albert(200, 4, &mut rng);
        let x = node_features(&g);
        assert_eq!(x.shape(), (200, FEATURE_DIM));
        for v in 0..200 {
            assert_eq!(x.get(v, 0), 1.0);
            for f in 1..FEATURE_DIM {
                let val = x.get(v, f);
                assert!((0.0..=1.0).contains(&val), "feature {f} of {v}: {val}");
            }
        }
        // hubs should have the max normalised out-degree of exactly 1
        assert!((0..200).any(|v| x.get(v, 1) == 1.0));
    }

    #[test]
    fn hub_has_larger_degree_feature_than_leaf() {
        let mut b = GraphBuilder::new_directed(5);
        for v in 1..5 {
            b.add_edge(0, v, 1.0);
        }
        let g = b.build();
        let x = node_features(&g);
        assert!(x.get(0, 1) > x.get(1, 1));
        assert!(x.get(1, 2) > x.get(0, 2)); // leaves have in-degree
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = privim_graph::Graph::empty(0, true);
        let x = node_features(&g);
        assert_eq!(x.shape(), (0, FEATURE_DIM));
        let g1 = privim_graph::Graph::empty(3, true);
        let x1 = node_features(&g1);
        assert!(!x1.has_non_finite());
    }
}

//! Quantized serving models.
//!
//! [`QuantGnnModel`] is an int8 mirror of [`GnnModel`]'s tape-free
//! inference path: every weight block with more than one row is stored as
//! per-column-scaled `i8` codes ([`QuantWeights`]) and contracted by
//! exact integer dot products at serve time — no dequantized matrix is
//! ever materialised. Biases and GIN's ε (all `1×…`) stay dense `f64`;
//! quantizing scalars saves nothing and costs accuracy.
//!
//! The layer loop below is deliberately operation-for-operation aligned
//! with `GnnModel::hidden_features` (it reuses the same crate-private
//! helpers), so the only divergence between the dense and quantized
//! paths is the weight contraction itself — which keeps the quantization
//! error analysable as a per-matmul perturbation.

use crate::model::{add_bias, gather, relu, scatter_add, segment_softmax, GnnConfig, GnnKind, GnnModel};
use crate::structures::GraphTensors;
use privim_rt::json::Value;
use privim_rt::{PrivimError, PrivimResult};
use privim_tensor::{Matrix, QuantWeights};

/// One quantized message-passing layer (layout follows the architecture).
#[derive(Clone, Debug)]
enum QLayer {
    /// GCN: quantized weight + dense bias.
    Gcn { w: QuantWeights, b: Matrix },
    /// GraphSAGE: quantized (concatenated) weight + dense bias.
    Sage { w: QuantWeights, b: Matrix },
    /// GAT/GRAT: quantized weight and attention vectors + dense bias.
    Att {
        w: QuantWeights,
        a_dst: QuantWeights,
        a_src: QuantWeights,
        b: Matrix,
    },
    /// GIN: two quantized MLP weights, dense biases, scalar ε.
    Gin {
        w1: QuantWeights,
        b1: Matrix,
        w2: QuantWeights,
        b2: Matrix,
        eps: f64,
    },
}

/// Int8-quantized inference model for the serving path. Built from a
/// trained [`GnnModel`] at pack time; bit-identical across every
/// `PRIVIM_SIMD` backend by construction (the integer contraction is
/// exact, so summation order cannot matter).
#[derive(Clone, Debug)]
pub struct QuantGnnModel {
    config: GnnConfig,
    layers: Vec<QLayer>,
    w_out: QuantWeights,
    b_out: Matrix,
}

impl QuantGnnModel {
    /// Quantize a trained model's weights (per-output-column int8);
    /// biases and ε are carried over exactly.
    pub fn from_model(m: &GnnModel) -> QuantGnnModel {
        let config = *m.config();
        let p = m.params();
        let mut pi = 0usize;
        let mut layers = Vec::with_capacity(config.layers);
        for _ in 0..config.layers {
            layers.push(match config.kind {
                GnnKind::Gcn => {
                    let l = QLayer::Gcn {
                        w: QuantWeights::quantize(&p[pi]),
                        b: p[pi + 1].clone(),
                    };
                    pi += 2;
                    l
                }
                GnnKind::GraphSage => {
                    let l = QLayer::Sage {
                        w: QuantWeights::quantize(&p[pi]),
                        b: p[pi + 1].clone(),
                    };
                    pi += 2;
                    l
                }
                GnnKind::Gat | GnnKind::Grat => {
                    let l = QLayer::Att {
                        w: QuantWeights::quantize(&p[pi]),
                        a_dst: QuantWeights::quantize(&p[pi + 1]),
                        a_src: QuantWeights::quantize(&p[pi + 2]),
                        b: p[pi + 3].clone(),
                    };
                    pi += 4;
                    l
                }
                GnnKind::Gin => {
                    let l = QLayer::Gin {
                        w1: QuantWeights::quantize(&p[pi]),
                        b1: p[pi + 1].clone(),
                        w2: QuantWeights::quantize(&p[pi + 2]),
                        b2: p[pi + 3].clone(),
                        eps: p[pi + 4].get(0, 0),
                    };
                    pi += 5;
                    l
                }
            });
        }
        QuantGnnModel {
            config,
            layers,
            w_out: QuantWeights::quantize(&p[pi]),
            b_out: p[pi + 1].clone(),
        }
    }

    /// Architecture configuration.
    pub fn config(&self) -> &GnnConfig {
        &self.config
    }

    /// Per-node seed probabilities — the quantized counterpart of
    /// [`GnnModel::infer`].
    pub fn infer(&self, gt: &GraphTensors, x: &Matrix) -> Vec<f64> {
        let h = self.hidden_features(gt, x);
        let logits = add_bias(&self.w_out.matmul(&h), &self.b_out);
        logits
            .data()
            .iter()
            .map(|&v| 1.0 / (1.0 + (-v).exp()))
            .collect()
    }

    /// The quantized layer loop (mirrors `GnnModel::hidden_features`).
    fn hidden_features(&self, gt: &GraphTensors, x: &Matrix) -> Matrix {
        assert_eq!(x.rows(), gt.n);
        assert_eq!(x.cols(), self.config.in_dim);
        let mut h = x.clone();
        for layer in &self.layers {
            h = match layer {
                QLayer::Gcn { w, b } => relu(&add_bias(&w.matmul(&gt.adj_gcn.spmm(&h)), b)),
                QLayer::Sage { w, b } => {
                    let m = gt.adj_mean.spmm(&h);
                    relu(&add_bias(&w.matmul(&h.concat_cols(&m)), b))
                }
                QLayer::Att { w, a_dst, a_src, b } => {
                    let hw = w.matmul(&h);
                    let src_f = gather(&hw, &gt.att_src);
                    let dst_f = gather(&hw, &gt.att_dst);
                    let mut e = a_dst.matmul(&dst_f);
                    e.add_assign(&a_src.matmul(&src_f));
                    let e = e.map(|v| if v > 0.0 { v } else { 0.2 * v });
                    let seg: &[u32] = if self.config.kind == GnnKind::Gat {
                        &gt.att_dst
                    } else {
                        &gt.att_src
                    };
                    let alpha = segment_softmax(&e, seg);
                    let mut msgs = src_f;
                    for r in 0..msgs.rows() {
                        let a = alpha[r];
                        for v in msgs.row_mut(r) {
                            *v *= a;
                        }
                    }
                    let mut agg = scatter_add(&msgs, &gt.att_dst, gt.n);
                    if self.config.kind == GnnKind::Gat {
                        agg.add_assign(&hw);
                    }
                    relu(&add_bias(&agg, b))
                }
                QLayer::Gin { w1, b1, w2, b2, eps } => {
                    let mut pre = gt.adj_sum.spmm(&h);
                    pre.add_scaled_assign(&h, 1.0 + eps);
                    let a1 = relu(&add_bias(&w1.matmul(&pre), b1));
                    relu(&add_bias(&w2.matmul(&a1), b2))
                }
            };
        }
        h
    }

    /// Reconstruct a dense [`GnnModel`] by dequantizing every weight
    /// block (biases/ε are exact). The result approximates the original
    /// trained model within the per-column quantization step; useful for
    /// consumers that need the dense parameter layout (bundle
    /// compaction, diagnostics).
    pub fn to_dense_model(&self) -> PrivimResult<GnnModel> {
        let mut params = Vec::new();
        for layer in &self.layers {
            match layer {
                QLayer::Gcn { w, b } | QLayer::Sage { w, b } => {
                    params.push(w.dequantize());
                    params.push(b.clone());
                }
                QLayer::Att { w, a_dst, a_src, b } => {
                    params.push(w.dequantize());
                    params.push(a_dst.dequantize());
                    params.push(a_src.dequantize());
                    params.push(b.clone());
                }
                QLayer::Gin { w1, b1, w2, b2, eps } => {
                    params.push(w1.dequantize());
                    params.push(b1.clone());
                    params.push(w2.dequantize());
                    params.push(b2.clone());
                    params.push(Matrix::full(1, 1, *eps));
                }
            }
        }
        params.push(self.w_out.dequantize());
        params.push(self.b_out.clone());
        GnnModel::from_parts(self.config, params)
    }

    /// Convenience: score a raw graph (builds tensors + features).
    pub fn score_graph(&self, g: &privim_graph::Graph) -> Vec<f64> {
        let gt = GraphTensors::new(g);
        let x = crate::features::node_features(g);
        self.infer(&gt, &x)
    }

    /// JSON payload (`{"config", "layers", "w_out", "b_out"}`) for the
    /// serve bundle; the bundle's CRC-32 covers it.
    pub fn to_json(&self) -> Value {
        let layers = self
            .layers
            .iter()
            .map(|l| match l {
                QLayer::Gcn { w, b } | QLayer::Sage { w, b } => {
                    Value::obj(vec![("w", w.to_json()), ("b", b.to_json())])
                }
                QLayer::Att { w, a_dst, a_src, b } => Value::obj(vec![
                    ("w", w.to_json()),
                    ("a_dst", a_dst.to_json()),
                    ("a_src", a_src.to_json()),
                    ("b", b.to_json()),
                ]),
                QLayer::Gin { w1, b1, w2, b2, eps } => Value::obj(vec![
                    ("w1", w1.to_json()),
                    ("b1", b1.to_json()),
                    ("w2", w2.to_json()),
                    ("b2", b2.to_json()),
                    ("eps", Value::Num(*eps)),
                ]),
            })
            .collect();
        Value::obj(vec![
            ("config", self.config.to_json()),
            ("layers", Value::Arr(layers)),
            ("w_out", self.w_out.to_json()),
            ("b_out", self.b_out.to_json()),
        ])
    }

    /// Parse the [`Self::to_json`] form with typed errors on any layout
    /// mismatch.
    pub fn from_json(v: &Value) -> PrivimResult<QuantGnnModel> {
        let bad = |msg: String| PrivimError::Parse(format!("quant model: {msg}"));
        let config = GnnConfig::from_json(
            v.get("config").ok_or_else(|| bad("missing config".into()))?,
        )?;
        let layer_vals = v
            .get("layers")
            .and_then(|x| x.as_array())
            .ok_or_else(|| bad("missing layers".into()))?;
        if layer_vals.len() != config.layers {
            return Err(bad(format!(
                "{} layers for a {}-layer config",
                layer_vals.len(),
                config.layers
            )));
        }
        let qw = |l: &Value, k: &str| {
            l.get(k)
                .ok_or_else(|| bad(format!("layer missing {k}")))
                .and_then(|x| QuantWeights::from_json(x).map_err(bad))
        };
        let dm = |l: &Value, k: &str| {
            l.get(k)
                .ok_or_else(|| bad(format!("layer missing {k}")))
                .and_then(|x| Matrix::from_json(x).map_err(bad))
        };
        let mut layers = Vec::with_capacity(layer_vals.len());
        for l in layer_vals {
            layers.push(match config.kind {
                GnnKind::Gcn => QLayer::Gcn {
                    w: qw(l, "w")?,
                    b: dm(l, "b")?,
                },
                GnnKind::GraphSage => QLayer::Sage {
                    w: qw(l, "w")?,
                    b: dm(l, "b")?,
                },
                GnnKind::Gat | GnnKind::Grat => QLayer::Att {
                    w: qw(l, "w")?,
                    a_dst: qw(l, "a_dst")?,
                    a_src: qw(l, "a_src")?,
                    b: dm(l, "b")?,
                },
                GnnKind::Gin => QLayer::Gin {
                    w1: qw(l, "w1")?,
                    b1: dm(l, "b1")?,
                    w2: qw(l, "w2")?,
                    b2: dm(l, "b2")?,
                    eps: l
                        .get("eps")
                        .and_then(|x| x.as_f64())
                        .ok_or_else(|| bad("layer missing eps".into()))?,
                },
            });
        }
        Ok(QuantGnnModel {
            config,
            layers,
            w_out: qw(v, "w_out")?,
            b_out: dm(v, "b_out")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{node_features, FEATURE_DIM};
    use privim_graph::generators;
    use privim_rt::{ChaCha8Rng, SeedableRng};

    fn setup(kind: GnnKind, seed: u64) -> (GnnModel, GraphTensors, Matrix) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::barabasi_albert(30, 3, &mut rng);
        let gt = GraphTensors::new(&g);
        let x = node_features(&g);
        let cfg = GnnConfig {
            kind,
            layers: 2,
            hidden: 8,
            in_dim: FEATURE_DIM,
        };
        (GnnModel::new(cfg, &mut rng), gt, x)
    }

    #[test]
    fn quantized_inference_tracks_dense_for_every_kind() {
        for kind in GnnKind::ALL {
            let (model, gt, x) = setup(kind, 31);
            let dense = model.infer(&gt, &x);
            let quant = QuantGnnModel::from_model(&model).infer(&gt, &x);
            assert_eq!(dense.len(), quant.len());
            let max_err = dense
                .iter()
                .zip(&quant)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            // probabilities live in [0,1]; int8 weights keep the served
            // scores within a few percent of the dense model
            assert!(max_err < 0.05, "{kind:?}: max prob drift {max_err}");
        }
    }

    #[test]
    fn json_round_trip_preserves_quantized_inference_bitwise() {
        for kind in GnnKind::ALL {
            let (model, gt, x) = setup(kind, 32);
            let q = QuantGnnModel::from_model(&model);
            let rt = QuantGnnModel::from_json(&q.to_json()).unwrap();
            let a = q.infer(&gt, &x);
            let b = rt.infer(&gt, &x);
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.to_bits(), y.to_bits(), "{kind:?}");
            }
        }
    }

    #[test]
    fn wrong_layer_count_is_a_typed_error() {
        let (model, _, _) = setup(GnnKind::Gcn, 33);
        let q = QuantGnnModel::from_model(&model);
        let text = q.to_json().to_json_string();
        // claim 3 layers while shipping 2 — must be a typed Parse error
        let bumped = text.replacen("\"layers\":2", "\"layers\":3", 1);
        assert_ne!(text, bumped, "config layer field not found");
        let v = Value::parse(&bumped).unwrap();
        assert!(matches!(
            QuantGnnModel::from_json(&v),
            Err(PrivimError::Parse(_))
        ));
    }

    #[test]
    fn quantized_inference_is_backend_invariant() {
        use privim_tensor::simd;
        let (model, gt, x) = setup(GnnKind::Grat, 34);
        let q = QuantGnnModel::from_model(&model);
        simd::set_backend(Some(simd::Choice::Scalar));
        let scalar = q.infer(&gt, &x);
        simd::set_backend(Some(simd::Choice::Auto));
        let auto = q.infer(&gt, &x);
        simd::set_backend(None);
        for (a, b) in scalar.iter().zip(&auto) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

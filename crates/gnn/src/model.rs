//! The five GNN architectures behind one interface.
//!
//! [`GnnModel::forward`] builds the differentiable graph on a
//! [`Tape`] (training path, per-subgraph), while [`GnnModel::infer`]
//! runs the identical computation tape-free (inference path — needed for
//! full-graph seed scoring where taping 200K-node intermediates would waste
//! memory). A unit test pins both paths to the same output.

use crate::features::FEATURE_DIM;
use crate::structures::GraphTensors;
use privim_rt::{PrivimError, PrivimResult, Rng};
use privim_tensor::{init, Matrix, SparseMatrix, Tape, Var};
use std::sync::Arc;

/// Format tag written into every model checkpoint file.
pub const CHECKPOINT_FORMAT: &str = "privim-gnn-checkpoint";

/// Current checkpoint format version. Bump on incompatible layout changes;
/// [`GnnModel::load_json`] rejects any other version with a typed error.
pub const CHECKPOINT_VERSION: u64 = 1;

/// Parse a `0x`-prefixed (or bare) hex string into a `u32`.
fn parse_hex_u32(s: &str) -> Option<u32> {
    let digits = s.strip_prefix("0x").unwrap_or(s);
    if digits.is_empty() || digits.len() > 8 {
        return None;
    }
    u32::from_str_radix(digits, 16).ok()
}

/// Which architecture (Appendix G).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GnnKind {
    /// Degree-normalised convolution (Kipf & Welling).
    Gcn,
    /// Mean aggregation + concatenation (Hamilton et al.).
    GraphSage,
    /// Attention normalised per target (Veličković et al.).
    Gat,
    /// Attention normalised per source — the paper's default (Ni et al.).
    Grat,
    /// Sum aggregation through an MLP (Xu et al.).
    Gin,
}

impl GnnKind {
    /// All five evaluated kinds (Fig. 9 order).
    pub const ALL: [GnnKind; 5] = [
        GnnKind::GraphSage,
        GnnKind::Gcn,
        GnnKind::Gat,
        GnnKind::Gin,
        GnnKind::Grat,
    ];

    /// Lowercase CLI name.
    pub fn name(self) -> &'static str {
        match self {
            GnnKind::Gcn => "gcn",
            GnnKind::GraphSage => "graphsage",
            GnnKind::Gat => "gat",
            GnnKind::Grat => "grat",
            GnnKind::Gin => "gin",
        }
    }

    /// Parse a CLI name.
    pub fn from_name(name: &str) -> Option<GnnKind> {
        let l = name.to_ascii_lowercase();
        Self::ALL.into_iter().find(|k| k.name() == l)
    }
}

/// Model hyperparameters. Paper defaults: 3 layers × 32 hidden units.
#[derive(Clone, Copy, Debug)]
pub struct GnnConfig {
    /// Architecture.
    pub kind: GnnKind,
    /// Number of message-passing layers `r`.
    pub layers: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Input feature dimension.
    pub in_dim: usize,
}

impl GnnConfig {
    /// JSON form `{"kind", "layers", "hidden", "in_dim"}` (the `config`
    /// section of checkpoints and quantized bundle payloads).
    pub fn to_json(&self) -> privim_rt::json::Value {
        use privim_rt::json::Value;
        Value::obj(vec![
            ("kind", Value::Str(self.kind.name().to_string())),
            ("layers", Value::Num(self.layers as f64)),
            ("hidden", Value::Num(self.hidden as f64)),
            ("in_dim", Value::Num(self.in_dim as f64)),
        ])
    }

    /// Parse the [`Self::to_json`] form, rejecting degenerate dimensions.
    pub fn from_json(cfg: &privim_rt::json::Value) -> PrivimResult<Self> {
        let bad = |msg: String| PrivimError::Parse(format!("gnn config: {msg}"));
        let kind = cfg
            .get("kind")
            .and_then(|v| v.as_str())
            .and_then(GnnKind::from_name)
            .ok_or_else(|| bad("bad kind".into()))?;
        let field = |name: &str| {
            cfg.get(name)
                .and_then(|v| v.as_usize())
                .ok_or_else(|| bad(format!("bad {name}")))
        };
        let config = GnnConfig {
            kind,
            layers: field("layers")?,
            hidden: field("hidden")?,
            in_dim: field("in_dim")?,
        };
        if config.layers < 1 || config.hidden < 1 || config.in_dim < 1 {
            return Err(bad("dimensions must be >= 1".into()));
        }
        Ok(config)
    }

    /// The paper's default: 3-layer GRAT, 32 hidden units, structural
    /// features.
    pub fn paper_default() -> Self {
        GnnConfig {
            kind: GnnKind::Grat,
            layers: 3,
            hidden: 32,
            in_dim: FEATURE_DIM,
        }
    }

    /// Same defaults with a different architecture (Fig. 9 sweeps).
    pub fn paper_default_with(kind: GnnKind) -> Self {
        GnnConfig {
            kind,
            ..Self::paper_default()
        }
    }
}

/// A GNN with its parameters. Parameter layout is architecture-specific;
/// use [`Self::params`]/[`Self::params_mut`] for optimisation and
/// [`Self::forward`]'s returned vars to fetch per-parameter gradients.
///
/// Serialisable: a trained (privatised) model can be persisted as JSON
/// and shipped — under DP, releasing the trained parameters is exactly the
/// threat model the training pipeline protects.
#[derive(Clone, Debug)]
pub struct GnnModel {
    config: GnnConfig,
    params: Vec<Matrix>,
}

impl GnnModel {
    /// Initialise with Xavier weights (attention vectors and biases near
    /// zero, GIN ε at zero — standard defaults).
    pub fn new(config: GnnConfig, rng: &mut impl Rng) -> Self {
        assert!(config.layers >= 1 && config.hidden >= 1 && config.in_dim >= 1);
        let mut params = Vec::new();
        let h = config.hidden;
        for l in 0..config.layers {
            let d_in = if l == 0 { config.in_dim } else { h };
            match config.kind {
                GnnKind::Gcn => {
                    params.push(init::xavier_uniform(d_in, h, rng));
                    params.push(Matrix::zeros(1, h));
                }
                GnnKind::GraphSage => {
                    params.push(init::xavier_uniform(2 * d_in, h, rng));
                    params.push(Matrix::zeros(1, h));
                }
                GnnKind::Gat | GnnKind::Grat => {
                    params.push(init::xavier_uniform(d_in, h, rng));
                    params.push(init::xavier_uniform(h, 1, rng).scale(0.1)); // a_dst
                    params.push(init::xavier_uniform(h, 1, rng).scale(0.1)); // a_src
                    params.push(Matrix::zeros(1, h));
                }
                GnnKind::Gin => {
                    // Damped first-layer init: GIN's *sum* aggregation sees
                    // pre-activations that scale with node degree, so
                    // full-gain Xavier saturates the MLP on hubs and kills
                    // the ranking signal; a 0.2 gain keeps hub activations
                    // in the trainable range (the instability Fig. 9's
                    // discussion attributes to GIN shows up here).
                    params.push(init::xavier_uniform(d_in, h, rng).scale(0.2));
                    params.push(Matrix::zeros(1, h));
                    params.push(init::xavier_uniform(h, h, rng));
                    params.push(Matrix::zeros(1, h));
                    params.push(Matrix::zeros(1, 1)); // ε
                }
            }
        }
        // readout; the bias starts negative so initial seed probabilities
        // sit near 0.1 instead of 0.5 — with unit IC weights that keeps the
        // loss' diffusion term unsaturated and the hub-seeking gradient
        // alive from step one.
        params.push(init::xavier_uniform(h, 1, rng));
        params.push(Matrix::full(1, 1, -2.0));
        GnnModel { config, params }
    }

    /// Architecture configuration.
    pub fn config(&self) -> &GnnConfig {
        &self.config
    }

    /// Immutable parameter list.
    pub fn params(&self) -> &[Matrix] {
        &self.params
    }

    /// Mutable parameter list (optimiser updates).
    pub fn params_mut(&mut self) -> &mut [Matrix] {
        &mut self.params
    }

    /// Total scalar parameter count.
    pub fn num_parameters(&self) -> usize {
        self.params.iter().map(|p| p.rows() * p.cols()).sum()
    }

    /// The checkpoint payload (config + parameters) as a JSON value. This
    /// is what [`CHECKPOINT_VERSION`] versions and the CRC-32 covers; the
    /// serve bundle embeds it verbatim.
    pub fn checkpoint_payload(&self) -> privim_rt::json::Value {
        use privim_rt::json::Value;
        Value::obj(vec![
            ("config", self.config.to_json()),
            (
                "params",
                Value::Arr(self.params.iter().map(Matrix::to_json).collect()),
            ),
        ])
    }

    /// Persist the model as a versioned, checksummed JSON checkpoint:
    ///
    /// ```json
    /// {"format": "privim-gnn-checkpoint", "version": 1,
    ///  "crc32": "0x…", "payload": {…}}
    /// ```
    ///
    /// The CRC-32 is computed over the compact serialisation of `payload`,
    /// so truncation or bit flips anywhere in the parameters are detected
    /// at load time instead of silently producing a wrong model.
    pub fn save_json<W: std::io::Write>(&self, mut w: W) -> PrivimResult<()> {
        use privim_rt::json::Value;
        let payload = self.checkpoint_payload();
        let payload_text = payload.to_json_string();
        let crc = privim_rt::crc::crc32(payload_text.as_bytes());
        let doc = Value::obj(vec![
            ("format", Value::Str(CHECKPOINT_FORMAT.to_string())),
            ("version", Value::Num(CHECKPOINT_VERSION as f64)),
            ("crc32", Value::Str(format!("{crc:#010x}"))),
            ("payload", payload),
        ]);
        w.write_all(doc.to_json_string().as_bytes())
            .map_err(|e| PrivimError::io("writing model checkpoint", e))
    }

    /// Load a model persisted with [`Self::save_json`]. Verifies the
    /// format name, format version, and payload CRC-32, then validates the
    /// parameter layout against the stored config. Every failure mode —
    /// truncated file, flipped bit, wrong version, wrong shape — surfaces
    /// as a typed [`PrivimError`], never a panic.
    pub fn load_json<R: std::io::Read>(mut r: R) -> PrivimResult<Self> {
        use privim_rt::json::Value;
        let mut text = String::new();
        r.read_to_string(&mut text)
            .map_err(|e| PrivimError::io("reading model checkpoint", e))?;
        let json = Value::parse(&text)
            .map_err(|e| PrivimError::Parse(format!("model checkpoint: {e}")))?;
        let format = json.get("format").and_then(|v| v.as_str()).unwrap_or("");
        if format != CHECKPOINT_FORMAT {
            return Err(PrivimError::Parse(format!(
                "not a {CHECKPOINT_FORMAT} file (format = {format:?})"
            )));
        }
        let version = json.get("version").and_then(|v| v.as_u64());
        if version != Some(CHECKPOINT_VERSION) {
            return Err(PrivimError::invalid(format!(
                "checkpoint version {version:?} not supported (expected {CHECKPOINT_VERSION})"
            )));
        }
        let payload = json
            .get("payload")
            .ok_or_else(|| PrivimError::Parse("checkpoint missing payload".into()))?;
        let stored_crc = json
            .get("crc32")
            .and_then(|v| v.as_str())
            .and_then(parse_hex_u32)
            .ok_or_else(|| PrivimError::Parse("checkpoint missing/bad crc32".into()))?;
        let actual_crc = privim_rt::crc::crc32(payload.to_json_string().as_bytes());
        if stored_crc != actual_crc {
            return Err(PrivimError::Parse(format!(
                "checkpoint checksum mismatch (stored {stored_crc:#010x}, computed \
                 {actual_crc:#010x}) — file is corrupted or truncated"
            )));
        }
        Self::from_checkpoint_payload(payload)
    }

    /// Decode the (already checksum-verified) checkpoint payload.
    pub fn from_checkpoint_payload(payload: &privim_rt::json::Value) -> PrivimResult<Self> {
        let bad = |msg: String| PrivimError::Parse(format!("model checkpoint: {msg}"));
        let cfg = payload
            .get("config")
            .ok_or_else(|| bad("missing config".into()))?;
        let config = GnnConfig::from_json(cfg)?;
        let params: Vec<Matrix> = payload
            .get("params")
            .and_then(|v| v.as_array())
            .ok_or_else(|| bad("missing params".into()))?
            .iter()
            .map(|v| Matrix::from_json(v).map_err(bad))
            .collect::<Result<_, _>>()?;
        Self::from_parts(config, params)
    }

    /// Assemble a model from a config and an explicit parameter list
    /// (decoded checkpoints, dequantized bundle payloads). Validates the
    /// layout against a freshly initialised reference model so a shape
    /// mismatch surfaces as a typed error instead of a forward-pass panic.
    pub fn from_parts(config: GnnConfig, params: Vec<Matrix>) -> PrivimResult<Self> {
        if config.layers < 1 || config.hidden < 1 || config.in_dim < 1 {
            return Err(PrivimError::invalid("gnn config dimensions must be >= 1"));
        }
        let model = GnnModel { config, params };
        // cheap sanity: rebuild a reference model and compare shapes
        let mut rng = privim_rt::ChaCha8Rng::seed_from_u64(0);
        use privim_rt::SeedableRng as _;
        let reference = GnnModel::new(model.config, &mut rng);
        if reference.params.len() != model.params.len()
            || reference
                .params
                .iter()
                .zip(&model.params)
                .any(|(a, b)| a.shape() != b.shape())
        {
            return Err(PrivimError::Parse(
                "model checkpoint: parameter layout does not match config".into(),
            ));
        }
        Ok(model)
    }

    /// Differentiable forward pass: registers every parameter as a tape
    /// leaf and returns `(probabilities, param_vars)` where
    /// `probabilities` is the `n×1` sigmoid seed-probability vector and
    /// `param_vars[i]` corresponds to `self.params()[i]`.
    pub fn forward(&self, tape: &mut Tape, gt: &GraphTensors, x: &Matrix) -> (Var, Vec<Var>) {
        assert_eq!(x.rows(), gt.n, "feature row count mismatch");
        assert_eq!(x.cols(), self.config.in_dim, "feature dim mismatch");
        let pvars: Vec<Var> = self.params.iter().map(|p| tape.leaf(p.clone())).collect();
        let mut h = tape.leaf(x.clone());
        let mut pi = 0usize;
        let gcn_id = tape.sparse_const(gt.adj_gcn.clone());
        let mean_id = tape.sparse_const(gt.adj_mean.clone());
        let sum_id = tape.sparse_const(gt.adj_sum.clone());

        for _ in 0..self.config.layers {
            h = match self.config.kind {
                GnnKind::Gcn => {
                    let (w, b) = (pvars[pi], pvars[pi + 1]);
                    pi += 2;
                    let agg = tape.spmm(gcn_id, h);
                    let lin = tape.matmul(agg, w);
                    let biased = tape.add_row_broadcast(lin, b);
                    tape.relu(biased)
                }
                GnnKind::GraphSage => {
                    let (w, b) = (pvars[pi], pvars[pi + 1]);
                    pi += 2;
                    let m = tape.spmm(mean_id, h);
                    let cat = tape.concat_cols(h, m);
                    let lin = tape.matmul(cat, w);
                    let biased = tape.add_row_broadcast(lin, b);
                    tape.relu(biased)
                }
                GnnKind::Gat | GnnKind::Grat => {
                    let (w, a_dst, a_src, b) =
                        (pvars[pi], pvars[pi + 1], pvars[pi + 2], pvars[pi + 3]);
                    pi += 4;
                    let hw = tape.matmul(h, w);
                    let src_f = tape.gather_rows(hw, gt.att_src.clone());
                    let dst_f = tape.gather_rows(hw, gt.att_dst.clone());
                    let s_dst = tape.matmul(dst_f, a_dst);
                    let s_src = tape.matmul(src_f, a_src);
                    let raw = tape.add(s_dst, s_src);
                    let e = tape.leaky_relu(raw, 0.2);
                    // Eq. 35 (GAT): normalise over each target's in-arcs;
                    // Eq. 39 (GRAT): over each source's out-arcs.
                    let seg = if self.config.kind == GnnKind::Gat {
                        gt.att_dst.clone()
                    } else {
                        gt.att_src.clone()
                    };
                    let alpha = tape.segment_softmax(e, seg);
                    let msgs = tape.mul_col_broadcast(alpha, src_f);
                    let agg = tape.scatter_add_rows(msgs, gt.att_dst.clone(), gt.n);
                    // GAT-only skip connection: target-normalised attention
                    // averages away the node's own magnitude information
                    // (on attribute-poor graphs the degree signal inverts),
                    // so GAT gets the standard self-features skip; GRAT's
                    // source-normalised attention (Eq. 37-40) preserves
                    // magnitude by itself.
                    let agg_out = if self.config.kind == GnnKind::Gat {
                        tape.add(agg, hw)
                    } else {
                        agg
                    };
                    let biased = tape.add_row_broadcast(agg_out, b);
                    tape.relu(biased)
                }
                GnnKind::Gin => {
                    let (w1, b1, w2, b2, eps) = (
                        pvars[pi],
                        pvars[pi + 1],
                        pvars[pi + 2],
                        pvars[pi + 3],
                        pvars[pi + 4],
                    );
                    pi += 5;
                    let neigh = tape.spmm(sum_id, h);
                    let one_plus_eps = tape.add_scalar(eps, 1.0);
                    let eps_col = tape.gather_rows(one_plus_eps, Arc::new(vec![0u32; gt.n]));
                    let scaled_self = tape.mul_col_broadcast(eps_col, h);
                    let pre = tape.add(neigh, scaled_self);
                    let l1 = tape.matmul(pre, w1);
                    let l1b = tape.add_row_broadcast(l1, b1);
                    let a1 = tape.relu(l1b);
                    let l2 = tape.matmul(a1, w2);
                    let l2b = tape.add_row_broadcast(l2, b2);
                    tape.relu(l2b)
                }
            };
        }
        let (w_out, b_out) = (pvars[pi], pvars[pi + 1]);
        let logits = tape.matmul(h, w_out);
        let logits_b = tape.add_row_broadcast(logits, b_out);
        let probs = tape.sigmoid(logits_b);
        (probs, pvars)
    }

    /// Tape-free forward pass for inference on large graphs. Returns the
    /// per-node seed probabilities. Must stay numerically identical to
    /// [`Self::forward`]; `forward_and_infer_agree` pins this.
    pub fn infer(&self, gt: &GraphTensors, x: &Matrix) -> Vec<f64> {
        let h = self.hidden_features(gt, x);
        let pi = self.params.len() - 2;
        let (w_out, b_out) = (&self.params[pi], &self.params[pi + 1]);
        let logits = add_bias(&h.matmul(w_out), b_out);
        logits
            .data()
            .iter()
            .map(|&v| 1.0 / (1.0 + (-v).exp()))
            .collect()
    }

    /// Penultimate-layer node embeddings: the `n × hidden` activation
    /// matrix after the last message-passing layer, *before* the readout.
    /// This is what the attack harness's topology-inference adversary sees
    /// (embedding-similarity edge reconstruction), and exactly the hidden
    /// state [`Self::infer`] feeds the sigmoid readout.
    pub fn embed(&self, gt: &GraphTensors, x: &Matrix) -> Matrix {
        self.hidden_features(gt, x)
    }

    /// Convenience: embeddings for a raw graph (builds tensors + features).
    pub fn embed_graph(&self, g: &privim_graph::Graph) -> Matrix {
        let gt = GraphTensors::new(g);
        let x = crate::features::node_features(g);
        self.embed(&gt, &x)
    }

    /// The shared layer loop of [`Self::infer`] and [`Self::embed`]:
    /// runs all message-passing layers tape-free and returns the final
    /// hidden activations.
    fn hidden_features(&self, gt: &GraphTensors, x: &Matrix) -> Matrix {
        assert_eq!(x.rows(), gt.n);
        assert_eq!(x.cols(), self.config.in_dim);
        let mut h = x.clone();
        let mut pi = 0usize;
        for _ in 0..self.config.layers {
            h = match self.config.kind {
                GnnKind::Gcn => {
                    let (w, b) = (&self.params[pi], &self.params[pi + 1]);
                    pi += 2;
                    relu(&add_bias(&gt.adj_gcn.spmm(&h).matmul(w), b))
                }
                GnnKind::GraphSage => {
                    let (w, b) = (&self.params[pi], &self.params[pi + 1]);
                    pi += 2;
                    let m = gt.adj_mean.spmm(&h);
                    relu(&add_bias(&h.concat_cols(&m).matmul(w), b))
                }
                GnnKind::Gat | GnnKind::Grat => {
                    let (w, a_dst, a_src, b) = (
                        &self.params[pi],
                        &self.params[pi + 1],
                        &self.params[pi + 2],
                        &self.params[pi + 3],
                    );
                    pi += 4;
                    let hw = h.matmul(w);
                    let src_f = gather(&hw, &gt.att_src);
                    let dst_f = gather(&hw, &gt.att_dst);
                    let mut e = dst_f.matmul(a_dst);
                    e.add_assign(&src_f.matmul(a_src));
                    let e = e.map(|v| if v > 0.0 { v } else { 0.2 * v });
                    let seg: &[u32] = if self.config.kind == GnnKind::Gat {
                        &gt.att_dst
                    } else {
                        &gt.att_src
                    };
                    let alpha = segment_softmax(&e, seg);
                    let mut msgs = src_f;
                    for r in 0..msgs.rows() {
                        let a = alpha[r];
                        for v in msgs.row_mut(r) {
                            *v *= a;
                        }
                    }
                    let mut agg = scatter_add(&msgs, &gt.att_dst, gt.n);
                    if self.config.kind == GnnKind::Gat {
                        agg.add_assign(&hw);
                    }
                    relu(&add_bias(&agg, b))
                }
                GnnKind::Gin => {
                    let (w1, b1, w2, b2, eps) = (
                        &self.params[pi],
                        &self.params[pi + 1],
                        &self.params[pi + 2],
                        &self.params[pi + 3],
                        &self.params[pi + 4],
                    );
                    pi += 5;
                    let mut pre = gt.adj_sum.spmm(&h);
                    pre.add_scaled_assign(&h, 1.0 + eps.get(0, 0));
                    let a1 = relu(&add_bias(&pre.matmul(w1), b1));
                    relu(&add_bias(&a1.matmul(w2), b2))
                }
            };
        }
        debug_assert_eq!(pi + 2, self.params.len(), "layer loop must consume all but the readout params");
        h
    }

    /// Convenience: score a raw graph (builds tensors + features).
    pub fn score_graph(&self, g: &privim_graph::Graph) -> Vec<f64> {
        let gt = GraphTensors::new(g);
        let x = crate::features::node_features(g);
        self.infer(&gt, &x)
    }
}

// -------- tape-free helpers (mirror tape op semantics) --------
// pub(crate): the quantized serving model reuses these so its layer loop
// stays operation-for-operation aligned with `hidden_features`.

pub(crate) fn relu(m: &Matrix) -> Matrix {
    m.map(|x| x.max(0.0))
}

pub(crate) fn add_bias(m: &Matrix, b: &Matrix) -> Matrix {
    let mut out = m.clone();
    for r in 0..out.rows() {
        for (j, v) in out.row_mut(r).iter_mut().enumerate() {
            *v += b.get(0, j);
        }
    }
    out
}

pub(crate) fn gather(m: &Matrix, idx: &[u32]) -> Matrix {
    let mut out = Matrix::zeros(idx.len(), m.cols());
    for (i, &r) in idx.iter().enumerate() {
        out.row_mut(i).copy_from_slice(m.row(r as usize));
    }
    out
}

pub(crate) fn scatter_add(m: &Matrix, idx: &[u32], rows: usize) -> Matrix {
    let mut out = Matrix::zeros(rows, m.cols());
    for (i, &r) in idx.iter().enumerate() {
        let dst = out.row_mut(r as usize);
        for (j, &v) in m.row(i).iter().enumerate() {
            dst[j] += v;
        }
    }
    out
}

pub(crate) fn segment_softmax(scores: &Matrix, seg: &[u32]) -> Vec<f64> {
    let nseg = seg.iter().map(|&x| x as usize + 1).max().unwrap_or(0);
    let mut mx = vec![f64::NEG_INFINITY; nseg];
    for (i, &g) in seg.iter().enumerate() {
        mx[g as usize] = mx[g as usize].max(scores.get(i, 0));
    }
    let mut sum = vec![0.0; nseg];
    let mut ex = vec![0.0; seg.len()];
    for (i, &g) in seg.iter().enumerate() {
        let e = (scores.get(i, 0) - mx[g as usize]).exp();
        ex[i] = e;
        sum[g as usize] += e;
    }
    for (i, &g) in seg.iter().enumerate() {
        ex[i] /= sum[g as usize];
    }
    ex
}

// `SparseMatrix` import is used by GraphTensors fields through methods only;
// keep the type path alive for doc links.
#[allow(unused)]
fn _doc_anchor(_: &SparseMatrix) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::node_features;
    use privim_graph::generators;
    use privim_rt::ChaCha8Rng;
    use privim_rt::SeedableRng;

    fn setup(kind: GnnKind, seed: u64) -> (GnnModel, GraphTensors, Matrix) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::barabasi_albert(30, 3, &mut rng);
        let gt = GraphTensors::new(&g);
        let x = node_features(&g);
        let cfg = GnnConfig {
            kind,
            layers: 2,
            hidden: 8,
            in_dim: FEATURE_DIM,
        };
        (GnnModel::new(cfg, &mut rng), gt, x)
    }

    #[test]
    fn outputs_are_probabilities_for_all_kinds() {
        for kind in GnnKind::ALL {
            let (model, gt, x) = setup(kind, 1);
            let probs = model.infer(&gt, &x);
            assert_eq!(probs.len(), 30);
            for &p in &probs {
                assert!((0.0..=1.0).contains(&p), "{kind:?}: prob {p}");
            }
        }
    }

    #[test]
    fn forward_and_infer_agree() {
        for kind in GnnKind::ALL {
            let (model, gt, x) = setup(kind, 2);
            let mut tape = Tape::new();
            let (pv, _) = model.forward(&mut tape, &gt, &x);
            let tape_probs = tape.value(pv).data().to_vec();
            let infer_probs = model.infer(&gt, &x);
            for (a, b) in tape_probs.iter().zip(&infer_probs) {
                assert!((a - b).abs() < 1e-12, "{kind:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn gradients_flow_to_every_parameter() {
        for kind in GnnKind::ALL {
            let (model, gt, x) = setup(kind, 3);
            let mut tape = Tape::new();
            let (pv, pvars) = model.forward(&mut tape, &gt, &x);
            // loss = sum(p^2) touches every node
            let sq = tape.mul(pv, pv);
            let loss = tape.sum(sq);
            let grads = tape.backward(loss);
            for (i, &v) in pvars.iter().enumerate() {
                let g = grads.wrt(v);
                assert!(
                    g.max_abs() > 0.0 || model.params()[i].max_abs() == 0.0,
                    "{kind:?}: param {i} got zero gradient"
                );
            }
        }
    }

    #[test]
    fn training_step_reduces_simple_loss() {
        // One SGD step on loss = sum(p) must reduce sum(p) — end-to-end
        // sanity for the whole stack.
        for kind in GnnKind::ALL {
            let (mut model, gt, x) = setup(kind, 4);
            let before: f64 = model.infer(&gt, &x).iter().sum();
            let mut tape = Tape::new();
            let (pv, pvars) = model.forward(&mut tape, &gt, &x);
            let loss = tape.sum(pv);
            let mut grads = tape.backward(loss);
            let gvec: Vec<Matrix> = pvars.iter().map(|&v| grads.take(v)).collect();
            let mut opt = privim_tensor::Sgd::new(0.05);
            use privim_tensor::Optimizer;
            opt.step(model.params_mut(), &gvec);
            let after: f64 = model.infer(&gt, &x).iter().sum();
            assert!(after < before, "{kind:?}: {after} !< {before}");
        }
    }

    #[test]
    fn param_counts_differ_by_architecture() {
        let (gcn, _, _) = setup(GnnKind::Gcn, 5);
        let (gin, _, _) = setup(GnnKind::Gin, 5);
        let (gat, _, _) = setup(GnnKind::Gat, 5);
        assert!(gin.num_parameters() > gat.num_parameters());
        assert!(gat.num_parameters() > gcn.num_parameters());
    }

    #[test]
    fn grat_and_gat_differ_in_normalisation() {
        let (_, gt, x) = setup(GnnKind::Gat, 6);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let cfg_gat = GnnConfig {
            kind: GnnKind::Gat,
            layers: 2,
            hidden: 8,
            in_dim: FEATURE_DIM,
        };
        let gat = GnnModel::new(cfg_gat, &mut rng);
        // same weights, different kind
        let mut grat = gat.clone();
        grat.config.kind = GnnKind::Grat;
        let pa = gat.infer(&gt, &x);
        let pb = grat.infer(&gt, &x);
        assert!(
            pa.iter().zip(&pb).any(|(a, b)| (a - b).abs() > 1e-9),
            "GAT and GRAT should produce different outputs"
        );
    }

    #[test]
    fn embed_is_the_penultimate_state_of_infer() {
        // embed() must return exactly the hidden state infer() feeds the
        // readout: sigmoid(embed · w_out + b_out) == infer, bit-for-bit.
        for kind in GnnKind::ALL {
            let (model, gt, x) = setup(kind, 9);
            let emb = model.embed(&gt, &x);
            assert_eq!(emb.rows(), gt.n);
            assert_eq!(emb.cols(), model.config().hidden);
            let pi = model.params().len() - 2;
            let (w_out, b_out) = (&model.params()[pi], &model.params()[pi + 1]);
            let logits = emb.matmul(w_out);
            let probs = model.infer(&gt, &x);
            for (r, &p) in probs.iter().enumerate() {
                let z = logits.get(r, 0) + b_out.get(0, 0);
                let want = 1.0 / (1.0 + (-z).exp());
                assert_eq!(p.to_bits(), want.to_bits(), "{kind:?} node {r}");
            }
        }
    }

    #[test]
    fn embed_graph_matches_embed_on_built_tensors() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let g = generators::barabasi_albert(25, 3, &mut rng);
        let model = GnnModel::new(GnnConfig::paper_default(), &mut rng);
        let via_graph = model.embed_graph(&g);
        let gt = GraphTensors::new(&g);
        let x = node_features(&g);
        let direct = model.embed(&gt, &x);
        assert_eq!(via_graph.data(), direct.data());
    }

    #[test]
    fn names_roundtrip() {
        for k in GnnKind::ALL {
            assert_eq!(GnnKind::from_name(k.name()), Some(k));
        }
        assert_eq!(GnnKind::from_name("GRAT"), Some(GnnKind::Grat));
        assert_eq!(GnnKind::from_name("transformer"), None);
    }

    #[test]
    fn score_graph_handles_isolated_nodes() {
        let g = privim_graph::Graph::empty(5, true);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let model = GnnModel::new(GnnConfig::paper_default(), &mut rng);
        let scores = model.score_graph(&g);
        assert_eq!(scores.len(), 5);
        assert!(scores.iter().all(|p| p.is_finite()));
    }
}

#[cfg(test)]
mod json_tests {
    use super::*;
    use privim_rt::ChaCha8Rng;
    use privim_rt::SeedableRng;

    #[test]
    fn model_json_roundtrip_preserves_inference() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let g = privim_graph::generators::barabasi_albert(40, 3, &mut rng);
        let model = GnnModel::new(GnnConfig::paper_default(), &mut rng);
        let mut buf = Vec::new();
        model.save_json(&mut buf).unwrap();
        let loaded = GnnModel::load_json(buf.as_slice()).unwrap();
        let a = model.score_graph(&g);
        let b = loaded.score_graph(&g);
        assert_eq!(a, b);
    }

    #[test]
    fn corrupted_layout_is_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let mut model = GnnModel::new(GnnConfig::paper_default(), &mut rng);
        model.params.pop(); // break the layout
        let mut buf = Vec::new();
        model.save_json(&mut buf).unwrap();
        assert!(GnnModel::load_json(buf.as_slice()).is_err());
    }

    #[test]
    fn garbage_json_is_rejected() {
        let err = GnnModel::load_json(&b"not json"[..]).unwrap_err();
        assert!(matches!(err, PrivimError::Parse(_)), "got {err:?}");
    }

    fn saved_checkpoint(seed: u64) -> Vec<u8> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let model = GnnModel::new(GnnConfig::paper_default(), &mut rng);
        let mut buf = Vec::new();
        model.save_json(&mut buf).unwrap();
        buf
    }

    #[test]
    fn checkpoint_declares_format_and_version() {
        let buf = saved_checkpoint(23);
        let doc = privim_rt::json::Value::parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(
            doc.get("format").and_then(|v| v.as_str()),
            Some(CHECKPOINT_FORMAT)
        );
        assert_eq!(
            doc.get("version").and_then(|v| v.as_u64()),
            Some(CHECKPOINT_VERSION)
        );
        assert!(doc.get("crc32").and_then(|v| v.as_str()).is_some());
    }

    #[test]
    fn bit_flip_in_payload_is_detected_by_checksum() {
        let buf = saved_checkpoint(24);
        let text = String::from_utf8(buf).unwrap();
        // Flip one digit inside the parameter data (well past the header).
        let pos = text.rfind(|c: char| c.is_ascii_digit()).unwrap();
        let mut corrupted = text.into_bytes();
        corrupted[pos] = if corrupted[pos] == b'5' { b'6' } else { b'5' };
        let err = GnnModel::load_json(corrupted.as_slice()).unwrap_err();
        match err {
            PrivimError::Parse(msg) => assert!(msg.contains("checksum"), "msg: {msg}"),
            other => panic!("expected Parse(checksum) error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_checkpoint_is_rejected_not_panicked() {
        let buf = saved_checkpoint(25);
        // Every truncation point must fail cleanly with a typed error.
        for cut in [0, 1, 10, buf.len() / 4, buf.len() / 2, buf.len() - 1] {
            let err = GnnModel::load_json(&buf[..cut]).unwrap_err();
            assert!(
                matches!(err, PrivimError::Parse(_)),
                "cut={cut} got {err:?}"
            );
        }
    }

    #[test]
    fn version_mismatch_is_a_typed_error() {
        let buf = saved_checkpoint(26);
        let text = String::from_utf8(buf).unwrap();
        let bumped = text.replacen("\"version\":1", "\"version\":2", 1);
        assert_ne!(text, bumped, "version field not found to rewrite");
        let err = GnnModel::load_json(bumped.as_bytes()).unwrap_err();
        match err {
            PrivimError::InvalidInput(msg) => assert!(msg.contains("version"), "msg: {msg}"),
            other => panic!("expected InvalidInput(version) error, got {other:?}"),
        }
    }

    #[test]
    fn wrong_format_tag_is_rejected() {
        let buf = saved_checkpoint(27);
        let text = String::from_utf8(buf).unwrap();
        let renamed = text.replacen(CHECKPOINT_FORMAT, "some-other-format", 1);
        let err = GnnModel::load_json(renamed.as_bytes()).unwrap_err();
        assert!(matches!(err, PrivimError::Parse(_)), "got {err:?}");
    }
}

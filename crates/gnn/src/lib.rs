#![warn(missing_docs)]
//! # privim-gnn
//!
//! The five GNN architectures of the paper's evaluation (§V-E, Appendix G)
//! implemented on the `privim-tensor` autograd engine:
//!
//! - **GCN** (Eqs. 31–32): degree-normalised aggregation.
//! - **GraphSAGE** (Eqs. 29–30): mean aggregation + concatenation.
//! - **GAT** (Eqs. 33–36): attention normalised over each *target's*
//!   in-edges.
//! - **GRAT** (Eqs. 37–40): attention normalised over each *source's*
//!   out-edges — the paper's default; penalising overlapping coverage is
//!   what makes it the strongest IM model.
//! - **GIN** (Eqs. 41–42): sum aggregation through an MLP with a learnable
//!   self-weight.
//!
//! All models share the same interface: `r` message-passing layers of
//! `hidden` units with ReLU, then a linear readout and sigmoid producing a
//! per-node seed probability (the output the IM loss of Eq. 5 consumes).
//!
//! [`structures::GraphTensors`] precomputes each graph's message-passing
//! operators (normalised adjacencies, attention edge lists) once so
//! repeated forward passes only pay for the dense math.

pub mod features;
pub mod model;
pub mod quant;
pub mod structures;

pub use features::{node_features, FEATURE_DIM};
pub use model::{GnnConfig, GnnKind, GnnModel};
pub use quant::QuantGnnModel;
pub use structures::GraphTensors;

//! Algorithm 1: subgraph extraction by random walk with restart on a
//! θ-bounded graph, constrained to the r-hop neighbourhood of the start
//! node.

use crate::container::SubgraphContainer;
use privim_graph::{algo, Graph, NodeId};
use privim_rt::Rng;

/// Parameters of Algorithm 1 (paper defaults in parentheses).
#[derive(Clone, Copy, Debug)]
pub struct RwrConfig {
    /// Subgraph size `n` — walks stop once this many unique nodes are
    /// collected.
    pub subgraph_size: usize,
    /// Restart probability `τ` (0.3).
    pub return_prob: f64,
    /// Per-node start-sampling rate `q` (256 / |V_train|).
    pub sampling_rate: f64,
    /// Maximum walk length `L` (200).
    pub walk_len: usize,
    /// Hop bound `r`: walks stay inside `N_r(v0)`; equals the GNN depth (3).
    pub hops: usize,
}

impl RwrConfig {
    /// The paper's default parameterisation for a graph with `v_train`
    /// training nodes.
    pub fn paper_defaults(subgraph_size: usize, v_train: usize) -> Self {
        RwrConfig {
            subgraph_size,
            return_prob: 0.3,
            sampling_rate: (256.0 / v_train.max(1) as f64).min(1.0),
            walk_len: 200,
            hops: 3,
        }
    }

    fn validate(&self) {
        assert!(self.subgraph_size >= 2, "subgraph size must be >= 2");
        assert!((0.0..=1.0).contains(&self.return_prob));
        assert!((0.0..=1.0).contains(&self.sampling_rate));
        assert!(self.walk_len >= 1);
        assert!(self.hops >= 1);
    }
}

/// Run Algorithm 1 over `g_theta` (the θ-bounded graph — callers project
/// first with [`privim_graph::projection::theta_projection`]). Returns the
/// subgraph container.
///
/// Walk rules (Lines 6–17): with probability τ teleport back to `v0`;
/// otherwise step to a uniform neighbour of `v_cur` that lies within
/// `N_r(v0)`. If `v_cur` has no eligible neighbour the walk teleports to
/// `v0` (the standard RWR dead-end convention). Only walks that collect
/// exactly `n` unique nodes within `L` steps yield a subgraph.
pub fn extract_subgraphs(
    g_theta: &Graph,
    cfg: &RwrConfig,
    rng: &mut impl Rng,
) -> SubgraphContainer {
    cfg.validate();
    let mut node_sets: Vec<Vec<NodeId>> = Vec::new();
    for v0 in g_theta.nodes() {
        if rng.gen::<f64>() >= cfg.sampling_rate {
            continue;
        }
        if let Some(set) = walk_from(g_theta, v0, cfg, rng) {
            node_sets.push(set);
        }
    }
    SubgraphContainer::from_node_sets(g_theta, &node_sets)
}

/// One RWR walk from `v0`; `Some(V_sub)` iff `n` unique nodes were reached.
fn walk_from(g: &Graph, v0: NodeId, cfg: &RwrConfig, rng: &mut impl Rng) -> Option<Vec<NodeId>> {
    let in_r_hop = algo::r_hop_bitmap(g, v0, cfg.hops);
    let mut v_sub: Vec<NodeId> = vec![v0];
    let mut in_sub = vec![false; g.num_nodes()];
    in_sub[v0 as usize] = true;
    let mut v_cur = v0;
    let mut candidates: Vec<NodeId> = Vec::new();

    for _ in 0..cfg.walk_len {
        if rng.gen::<f64>() < cfg.return_prob {
            v_cur = v0;
        }
        candidates.clear();
        candidates.extend(
            g.out_neighbors(v_cur)
                .iter()
                .copied()
                .filter(|&u| in_r_hop[u as usize]),
        );
        if candidates.is_empty() {
            // dead end: teleport and retry next step
            v_cur = v0;
            continue;
        }
        let v_next = candidates[rng.gen_range(0..candidates.len())];
        v_cur = v_next;
        if !in_sub[v_next as usize] {
            in_sub[v_next as usize] = true;
            v_sub.push(v_next);
        }
        if v_sub.len() == cfg.subgraph_size {
            return Some(v_sub);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_dp::sensitivity::naive_occurrence_bound;
    use privim_graph::{generators, projection};
    use privim_rt::ChaCha8Rng;
    use privim_rt::SeedableRng;

    fn sample_setup(seed: u64, theta: usize) -> (Graph, ChaCha8Rng) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::barabasi_albert(400, 5, &mut rng);
        let gt = projection::theta_projection(&g, theta, &mut rng);
        (gt, rng)
    }

    #[test]
    fn subgraphs_have_exact_size() {
        let (gt, mut rng) = sample_setup(1, 10);
        let cfg = RwrConfig {
            subgraph_size: 12,
            return_prob: 0.3,
            sampling_rate: 0.5,
            walk_len: 200,
            hops: 3,
        };
        let c = extract_subgraphs(&gt, &cfg, &mut rng);
        assert!(!c.is_empty(), "should extract some subgraphs");
        for s in &c.subgraphs {
            assert_eq!(s.len(), 12);
        }
    }

    #[test]
    fn walk_respects_r_hop_constraint() {
        let (gt, mut rng) = sample_setup(2, 10);
        let cfg = RwrConfig {
            subgraph_size: 8,
            return_prob: 0.3,
            sampling_rate: 1.0,
            walk_len: 200,
            hops: 2,
        };
        for v0 in gt.nodes().take(50) {
            if let Some(set) = walk_from(&gt, v0, &cfg, &mut rng) {
                let hood = algo::r_hop_neighborhood(&gt, v0, 2);
                for v in set {
                    assert!(hood.binary_search(&v).is_ok(), "{v} outside N_r({v0})");
                }
            }
        }
    }

    #[test]
    fn occurrence_stays_under_lemma1_bound() {
        // Lemma 1: with θ-bounded in-degree and r-layer locality, any node
        // occurs at most N_g = Σ θ^i times.
        let (gt, mut rng) = sample_setup(3, 4);
        let cfg = RwrConfig {
            subgraph_size: 10,
            return_prob: 0.3,
            sampling_rate: 1.0,
            walk_len: 150,
            hops: 2,
        };
        let c = extract_subgraphs(&gt, &cfg, &mut rng);
        let bound = naive_occurrence_bound(4, 2); // 1 + 4 + 16 = 21
        assert!(
            (c.max_occurrence() as u64) <= bound,
            "max occurrence {} > bound {bound}",
            c.max_occurrence()
        );
    }

    #[test]
    fn zero_sampling_rate_yields_nothing() {
        let (gt, mut rng) = sample_setup(4, 10);
        let cfg = RwrConfig {
            subgraph_size: 10,
            return_prob: 0.3,
            sampling_rate: 0.0,
            walk_len: 100,
            hops: 3,
        };
        assert!(extract_subgraphs(&gt, &cfg, &mut rng).is_empty());
    }

    #[test]
    fn isolated_start_produces_no_subgraph() {
        let g = Graph::empty(5, true);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let cfg = RwrConfig {
            subgraph_size: 3,
            return_prob: 0.3,
            sampling_rate: 1.0,
            walk_len: 50,
            hops: 2,
        };
        assert!(extract_subgraphs(&g, &cfg, &mut rng).is_empty());
    }

    #[test]
    fn paper_defaults_clamp_sampling_rate() {
        let cfg = RwrConfig::paper_defaults(40, 100);
        assert_eq!(cfg.sampling_rate, 1.0);
        let cfg2 = RwrConfig::paper_defaults(40, 10_000);
        assert!((cfg2.sampling_rate - 0.0256).abs() < 1e-12);
        assert_eq!(cfg2.walk_len, 200);
        assert_eq!(cfg2.hops, 3);
    }

    #[test]
    fn prop_all_subgraph_nodes_within_r_hops() {
        // Deterministic property test: 8 seeds sampled from [0, 500).
        use privim_rt::Rng;
        let mut meta = ChaCha8Rng::seed_from_u64(0x4342);
        for _ in 0..8 {
            let seed = meta.gen_range(0u64..500);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let g = generators::barabasi_albert(120, 3, &mut rng);
            let gt = projection::theta_projection(&g, 6, &mut rng);
            let cfg = RwrConfig {
                subgraph_size: 6,
                return_prob: 0.3,
                sampling_rate: 0.3,
                walk_len: 80,
                hops: 2,
            };
            let c = extract_subgraphs(&gt, &cfg, &mut rng);
            // invariant: every extracted set has the exact requested size
            for s in &c.subgraphs {
                assert_eq!(s.len(), 6, "case seed {seed}");
            }
        }
    }
}

//! Algorithm 3 end-to-end: the dual-stage adaptive frequency sampling
//! scheme (§IV).
//!
//! Stage 1 — Sensitivity-Constrained Sampling (SCS): `FreqSampling` on the
//! *original* graph with a fresh frequency vector.
//!
//! Stage 2 — Boundary-Enhanced Sampling (BES): remove every node that
//! reached the threshold `M`, build the residual graph `G_re`, carry the
//! surviving nodes' frequencies over as `f*`, and run `FreqSampling` again
//! with subgraph size `n / s`. Because the per-node budget `M` is shared
//! across both stages, stage 2 adds structural information *without*
//! loosening the occurrence bound — which is why it is free in privacy
//! terms (§IV-D).

use crate::container::SubgraphContainer;
use crate::freq::{freq_sampling, FreqConfig};
use privim_graph::{induced_subgraph, Graph, NodeId};
use privim_rt::{PrivimResult, Rng};

/// Parameters for the full dual-stage scheme.
#[derive(Clone, Copy, Debug)]
pub struct DualStageConfig {
    /// Stage-1 `FreqSampling` parameters (n, τ, μ, q, L, M).
    pub stage1: FreqConfig,
    /// BES shrink factor `s ≥ 1`: stage-2 subgraphs have size `n / s`
    /// (minimum 2).
    pub shrink: usize,
    /// Whether to run stage 2 at all (lets Table II ablate SCS alone).
    pub enable_bes: bool,
}

impl DualStageConfig {
    /// Paper defaults: μ=1, τ=0.3, L=200, q=256/|V_train|, s=2, BES on.
    pub fn paper_defaults(subgraph_size: usize, threshold: u32, v_train: usize) -> Self {
        DualStageConfig {
            stage1: FreqConfig::paper_defaults(subgraph_size, threshold, v_train),
            shrink: 2,
            enable_bes: true,
        }
    }

    /// Stage-2 configuration derived from stage 1: same walk parameters,
    /// same threshold, reduced subgraph size.
    pub fn stage2(&self) -> FreqConfig {
        FreqConfig {
            subgraph_size: (self.stage1.subgraph_size / self.shrink.max(1)).max(2),
            ..self.stage1
        }
    }
}

/// Outcome of Algorithm 3 with per-stage diagnostics.
pub struct DualStageOutput {
    /// Combined container `G_sub = G_sub,stage1 + G_sub,stage2` with
    /// occurrence accounting over the original graph.
    pub container: SubgraphContainer,
    /// Number of stage-1 subgraphs.
    pub stage1_count: usize,
    /// Number of stage-2 subgraphs.
    pub stage2_count: usize,
    /// Nodes removed before stage 2 (`f_v = M` after stage 1).
    pub saturated_nodes: usize,
    /// Final per-node frequencies over the original graph.
    pub frequencies: Vec<u32>,
}

/// Run Algorithm 3 over `g`. Degenerate graphs (empty, zero-edge,
/// single-node) yield an empty container, not an error; invalid
/// configurations are [`privim_rt::PrivimError::InvalidInput`].
pub fn dual_stage_sampling(
    g: &Graph,
    cfg: &DualStageConfig,
    rng: &mut impl Rng,
) -> PrivimResult<DualStageOutput> {
    // ---- Stage 1: SCS (Lines 1-2) ----
    let mut freq = vec![0u32; g.num_nodes()];
    let stage1_sets = freq_sampling(g, &mut freq, &cfg.stage1, rng)?;
    let mut container = SubgraphContainer::from_node_sets(g, &stage1_sets);
    let stage1_count = container.len();

    if !cfg.enable_bes {
        return Ok(DualStageOutput {
            container,
            stage1_count,
            stage2_count: 0,
            saturated_nodes: freq.iter().filter(|&&f| f >= cfg.stage1.threshold).count(),
            frequencies: freq,
        });
    }

    // ---- Stage 2: BES (Lines 3-6) ----
    // V_re = V \ {v : f_v = M}; build G_re and the restricted vector f*.
    let remaining: Vec<NodeId> = g
        .nodes()
        .filter(|&v| freq[v as usize] < cfg.stage1.threshold)
        .collect();
    let saturated_nodes = g.num_nodes() - remaining.len();

    let stage2_count;
    if remaining.len() >= 2 {
        let residual = induced_subgraph(g, &remaining);
        // f* carries the surviving nodes' stage-1 counts, so the shared
        // budget M continues to bind.
        let mut f_star: Vec<u32> = residual
            .original
            .iter()
            .map(|&o| freq[o as usize])
            .collect();
        let stage2_sets = freq_sampling(&residual.graph, &mut f_star, &cfg.stage2(), rng)?;
        stage2_count = stage2_sets.len();

        // Map residual-graph ids back to original ids, then induce the
        // stage-2 subgraphs from the original graph. (Inducing a subset of
        // V_re from G equals inducing it from G_re, so this is faithful.)
        let mapped: Vec<Vec<NodeId>> = stage2_sets
            .iter()
            .map(|set| set.iter().map(|&l| residual.original_id(l)).collect())
            .collect();
        let stage2_container = SubgraphContainer::from_node_sets(g, &mapped);
        container.merge(stage2_container);

        // Propagate stage-2 counts into the global frequency vector.
        for (local, &orig) in residual.original.iter().enumerate() {
            freq[orig as usize] = f_star[local];
        }
    } else {
        stage2_count = 0;
    }

    Ok(DualStageOutput {
        container,
        stage1_count,
        stage2_count,
        saturated_nodes,
        frequencies: freq,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_graph::generators;
    use privim_rt::ChaCha8Rng;
    use privim_rt::SeedableRng;

    fn cfg(n: usize, m: u32, q: f64, bes: bool) -> DualStageConfig {
        DualStageConfig {
            stage1: FreqConfig {
                subgraph_size: n,
                return_prob: 0.3,
                decay: 1.0,
                sampling_rate: q,
                walk_len: 200,
                threshold: m,
            },
            shrink: 2,
            enable_bes: bes,
        }
    }

    #[test]
    fn combined_occurrences_respect_shared_budget() {
        // The privacy-critical invariant of §IV-D: across BOTH stages no
        // node exceeds M occurrences.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = generators::barabasi_albert(400, 5, &mut rng);
        for m in [2u32, 4, 6] {
            let out = dual_stage_sampling(&g, &cfg(16, m, 1.0, true), &mut rng).unwrap();
            assert!(
                out.container.max_occurrence() <= m,
                "M={m}: combined max occurrence {}",
                out.container.max_occurrence()
            );
        }
    }

    #[test]
    fn bes_adds_subgraphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = generators::barabasi_albert(600, 4, &mut rng);
        let with = dual_stage_sampling(&g, &cfg(20, 4, 1.0, true), &mut rng).unwrap();
        assert!(with.stage2_count > 0, "BES produced nothing");
        assert_eq!(with.container.len(), with.stage1_count + with.stage2_count);
    }

    #[test]
    fn stage2_subgraphs_are_smaller() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = generators::barabasi_albert(600, 4, &mut rng);
        let c = cfg(20, 4, 1.0, true);
        let out = dual_stage_sampling(&g, &c, &mut rng).unwrap();
        // stage-1 subgraphs are the first `stage1_count`, each of size 20;
        // stage-2 ones have size n/s = 10.
        for (i, s) in out.container.subgraphs.iter().enumerate() {
            if i < out.stage1_count {
                assert_eq!(s.len(), 20);
            } else {
                assert_eq!(s.len(), 10);
            }
        }
    }

    #[test]
    fn disabling_bes_skips_stage2() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = generators::barabasi_albert(300, 4, &mut rng);
        let out = dual_stage_sampling(&g, &cfg(16, 4, 1.0, false), &mut rng).unwrap();
        assert_eq!(out.stage2_count, 0);
        assert_eq!(out.container.len(), out.stage1_count);
    }

    #[test]
    fn stage2_avoids_saturated_nodes() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = generators::barabasi_albert(500, 5, &mut rng);
        let m = 2;
        let out = dual_stage_sampling(&g, &cfg(12, m, 1.0, true), &mut rng).unwrap();
        // Nodes that were saturated after stage 1 must not appear in any
        // stage-2 subgraph; equivalently no node's final frequency exceeds M.
        assert!(out.frequencies.iter().all(|&f| f <= m));
        // container accounting matches the frequency vector
        for v in g.nodes() {
            assert_eq!(out.container.occurrence(v), out.frequencies[v as usize]);
        }
    }

    #[test]
    fn tiny_graph_degenerates_gracefully() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let g = generators::barabasi_albert(8, 2, &mut rng);
        let out = dual_stage_sampling(&g, &cfg(4, 2, 1.0, true), &mut rng).unwrap();
        assert!(out.container.max_occurrence() <= 2);
    }

    #[test]
    fn prop_shared_budget_invariant() {
        // Deterministic property test: 8 sampled (seed, m) cases.
        use privim_rt::Rng;
        let mut meta = ChaCha8Rng::seed_from_u64(0xD0A1);
        for _ in 0..8 {
            let seed = meta.gen_range(0u64..1000);
            let m = meta.gen_range(1u32..5);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let g = generators::barabasi_albert(200, 4, &mut rng);
            let out = dual_stage_sampling(&g, &cfg(10, m, 1.0, true), &mut rng).unwrap();
            assert!(out.container.max_occurrence() <= m, "seed {seed} m {m}");
        }
    }
}

//! The `FreqSampling` routine of Algorithm 3 (Lines 9–28): random walk with
//! restart whose next-step distribution is the frequency-decayed Eq. 9, and
//! whose node occurrences are hard-capped at the global threshold `M`.
//!
//! This is the Sensitivity-Constrained Sampling (SCS) stage when run on the
//! full graph with a fresh frequency vector, and the Boundary-Enhanced
//! Sampling (BES) stage when run on the residual graph with the carried-over
//! frequency vector and a reduced subgraph size.

use crate::container::SubgraphContainer;
use privim_graph::{Graph, NodeId};
use privim_rt::{PrivimError, PrivimResult, Rng};

/// Parameters of `FreqSampling`.
#[derive(Clone, Copy, Debug)]
pub struct FreqConfig {
    /// Subgraph size `n`.
    pub subgraph_size: usize,
    /// Restart probability `τ` (0.3).
    pub return_prob: f64,
    /// Decay factor `μ` of Eq. 9 (how strongly past occurrences suppress
    /// re-sampling); `μ = 0` recovers uniform RWR.
    pub decay: f64,
    /// Per-node start-sampling rate `q`.
    pub sampling_rate: f64,
    /// Maximum walk length `L` (200).
    pub walk_len: usize,
    /// Global frequency threshold `M`: no node may appear in more than `M`
    /// subgraphs.
    pub threshold: u32,
}

impl FreqConfig {
    /// Paper defaults with the given `n` and `M` for `v_train` training
    /// nodes (μ = 1, τ = 0.3, L = 200, q = 256/|V_train|).
    pub fn paper_defaults(subgraph_size: usize, threshold: u32, v_train: usize) -> Self {
        FreqConfig {
            subgraph_size,
            return_prob: 0.3,
            decay: 1.0,
            sampling_rate: (256.0 / v_train.max(1) as f64).min(1.0),
            walk_len: 200,
            threshold,
        }
    }

    pub(crate) fn validate(&self) -> PrivimResult<()> {
        if self.subgraph_size < 2 {
            return Err(PrivimError::invalid("subgraph size must be >= 2"));
        }
        if !(0.0..=1.0).contains(&self.return_prob) {
            return Err(PrivimError::invalid(format!(
                "return_prob must be in [0, 1], got {}",
                self.return_prob
            )));
        }
        if !(self.decay >= 0.0) {
            return Err(PrivimError::invalid(format!(
                "decay must be >= 0, got {}",
                self.decay
            )));
        }
        if !(0.0..=1.0).contains(&self.sampling_rate) {
            return Err(PrivimError::invalid(format!(
                "sampling_rate must be in [0, 1], got {}",
                self.sampling_rate
            )));
        }
        if self.walk_len < 1 {
            return Err(PrivimError::invalid("walk_len must be >= 1"));
        }
        if self.threshold < 1 {
            return Err(PrivimError::invalid("threshold M must be >= 1"));
        }
        Ok(())
    }
}

/// Eq. 9 numerator: `e_v = 1 / (f_v + 1)^μ` while `f_v < M`, else 0.
#[inline]
fn eq9_weight(freq: u32, threshold: u32, decay: f64) -> f64 {
    if freq >= threshold {
        0.0
    } else {
        1.0 / ((freq + 1) as f64).powf(decay)
    }
}

/// Run `FreqSampling(f, G, n)` (Algorithm 3, Lines 9–28) over `g`, reading
/// and updating the frequency vector `freq` in place. Returns the node sets
/// of the extracted subgraphs, in `g`'s id space.
///
/// The frequency vector is indexed by `g`'s node ids; the dual-stage driver
/// maps between the full and residual graphs.
///
/// Degenerate inputs (empty graph, zero-edge graph) are not errors: the
/// walks simply never complete and the result is an empty set list.
pub fn freq_sampling(
    g: &Graph,
    freq: &mut [u32],
    cfg: &FreqConfig,
    rng: &mut impl Rng,
) -> PrivimResult<Vec<Vec<NodeId>>> {
    cfg.validate()?;
    if freq.len() != g.num_nodes() {
        return Err(PrivimError::invalid(format!(
            "frequency vector length mismatch: {} entries for {} nodes",
            freq.len(),
            g.num_nodes()
        )));
    }
    let mut sets: Vec<Vec<NodeId>> = Vec::new();
    for v0 in g.nodes() {
        if rng.gen::<f64>() >= cfg.sampling_rate || freq[v0 as usize] >= cfg.threshold {
            continue;
        }
        if let Some(set) = walk_from(g, v0, freq, cfg, rng) {
            // Line 26: update f with V_sub after each completed subgraph.
            for &v in &set {
                freq[v as usize] += 1;
            }
            sets.push(set);
        }
    }
    Ok(sets)
}

/// Convenience wrapper: run [`freq_sampling`] and build a container.
pub fn freq_sampling_container(
    g: &Graph,
    freq: &mut [u32],
    cfg: &FreqConfig,
    rng: &mut impl Rng,
) -> PrivimResult<SubgraphContainer> {
    let sets = freq_sampling(g, freq, cfg, rng)?;
    Ok(SubgraphContainer::from_node_sets(g, &sets))
}

fn walk_from(
    g: &Graph,
    v0: NodeId,
    freq: &[u32],
    cfg: &FreqConfig,
    rng: &mut impl Rng,
) -> Option<Vec<NodeId>> {
    let mut v_sub: Vec<NodeId> = vec![v0];
    let mut in_sub = vec![false; g.num_nodes()];
    in_sub[v0 as usize] = true;
    let mut v_cur = v0;
    let mut weights: Vec<f64> = Vec::new();

    for _ in 0..cfg.walk_len {
        if rng.gen::<f64>() < cfg.return_prob {
            v_cur = v0;
        }
        let nbrs = g.out_neighbors(v_cur);
        weights.clear();
        weights.extend(
            nbrs.iter()
                .map(|&u| eq9_weight(freq[u as usize], cfg.threshold, cfg.decay)),
        );
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            // Every neighbour saturated (or none exist): teleport.
            v_cur = v0;
            continue;
        }
        // Sample v_next ∝ d_v (Eq. 9).
        let mut target = rng.gen::<f64>() * total;
        let mut pick = nbrs.len() - 1;
        for (i, &w) in weights.iter().enumerate() {
            if target < w {
                pick = i;
                break;
            }
            target -= w;
        }
        let v_next = nbrs[pick];
        v_cur = v_next;
        if !in_sub[v_next as usize] {
            in_sub[v_next as usize] = true;
            v_sub.push(v_next);
        }
        if v_sub.len() == cfg.subgraph_size {
            return Some(v_sub);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_graph::generators;
    use privim_rt::ChaCha8Rng;
    use privim_rt::SeedableRng;

    fn cfg(n: usize, m: u32, q: f64) -> FreqConfig {
        FreqConfig {
            subgraph_size: n,
            return_prob: 0.3,
            decay: 1.0,
            sampling_rate: q,
            walk_len: 200,
            threshold: m,
        }
    }

    #[test]
    fn eq9_weight_decays_and_saturates() {
        assert_eq!(eq9_weight(0, 4, 1.0), 1.0);
        assert_eq!(eq9_weight(1, 4, 1.0), 0.5);
        assert_eq!(eq9_weight(3, 4, 1.0), 0.25);
        assert_eq!(eq9_weight(4, 4, 1.0), 0.0, "at threshold: excluded");
        assert_eq!(eq9_weight(9, 4, 1.0), 0.0);
        // μ = 0: uniform regardless of frequency (until the cap)
        assert_eq!(eq9_weight(3, 4, 0.0), 1.0);
        // μ = 2: quadratic decay
        assert_eq!(eq9_weight(1, 4, 2.0), 0.25);
    }

    #[test]
    fn occurrences_never_exceed_threshold() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = generators::barabasi_albert(300, 5, &mut rng);
        for m in [1u32, 2, 4, 8] {
            let mut freq = vec![0u32; g.num_nodes()];
            let c = freq_sampling_container(&g, &mut freq, &cfg(10, m, 1.0), &mut rng).unwrap();
            assert!(
                c.max_occurrence() <= m,
                "M={m}: max occurrence {}",
                c.max_occurrence()
            );
            // container accounting agrees with the frequency vector
            for v in g.nodes() {
                assert_eq!(c.occurrence(v), freq[v as usize]);
            }
        }
    }

    #[test]
    fn subgraphs_have_exact_size() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = generators::barabasi_albert(300, 5, &mut rng);
        let mut freq = vec![0u32; g.num_nodes()];
        let c = freq_sampling_container(&g, &mut freq, &cfg(15, 6, 0.8), &mut rng).unwrap();
        assert!(!c.is_empty());
        for s in &c.subgraphs {
            assert_eq!(s.len(), 15);
        }
    }

    #[test]
    fn saturated_start_nodes_are_skipped() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = generators::barabasi_albert(100, 4, &mut rng);
        let mut freq = vec![2u32; g.num_nodes()]; // everyone at the cap
        let sets = freq_sampling(&g, &mut freq, &cfg(5, 2, 1.0), &mut rng).unwrap();
        assert!(sets.is_empty());
        assert!(freq.iter().all(|&f| f == 2), "frequencies unchanged");
    }

    #[test]
    fn decay_flattens_occurrence_distribution() {
        // The point of Eq. 9: frequently sampled nodes (hubs) get suppressed,
        // so with decay the maximum occurrence count drops relative to
        // uniform RWR at the same (uncapped) budget.
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = generators::barabasi_albert(500, 4, &mut rng);
        let max_freq = |decay: f64, rng: &mut ChaCha8Rng| {
            let mut freq = vec![0u32; g.num_nodes()];
            let c = FreqConfig {
                decay,
                ..cfg(20, 100_000, 1.0)
            };
            freq_sampling(&g, &mut freq, &c, rng).unwrap();
            freq.iter().copied().max().unwrap_or(0)
        };
        let peaked_uniform = max_freq(0.0, &mut rng);
        let peaked_decay = max_freq(2.0, &mut rng);
        assert!(
            peaked_decay < peaked_uniform,
            "decay max {peaked_decay} vs uniform max {peaked_uniform}"
        );
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = Graph::empty(10, true);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut freq = vec![0u32; 10];
        assert!(freq_sampling(&g, &mut freq, &cfg(3, 4, 1.0), &mut rng)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn wrong_freq_length_is_typed_error() {
        use privim_rt::PrivimError;
        let g = Graph::empty(10, true);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut freq = vec![0u32; 5];
        let err = freq_sampling(&g, &mut freq, &cfg(3, 4, 1.0), &mut rng).unwrap_err();
        assert!(matches!(err, PrivimError::InvalidInput(_)), "{err}");
        assert!(err.to_string().contains("length mismatch"));
    }

    #[test]
    fn invalid_config_is_typed_error() {
        use privim_rt::PrivimError;
        let g = Graph::empty(10, true);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut freq = vec![0u32; 10];
        for bad in [
            cfg(1, 4, 1.0),              // subgraph size < 2
            cfg(3, 0, 1.0),              // threshold 0
            cfg(3, 4, 1.5),              // sampling rate out of range
            FreqConfig {
                return_prob: -0.1,
                ..cfg(3, 4, 1.0)
            },
            FreqConfig {
                decay: f64::NAN,
                ..cfg(3, 4, 1.0)
            },
        ] {
            let err = freq_sampling(&g, &mut freq, &bad, &mut rng).unwrap_err();
            assert!(matches!(err, PrivimError::InvalidInput(_)), "{err}");
        }
    }

    #[test]
    fn prop_threshold_invariant() {
        // Deterministic property test: 10 sampled (seed, m, n) cases.
        use privim_rt::Rng;
        let mut meta = ChaCha8Rng::seed_from_u64(0xF4E0);
        for _ in 0..10 {
            let seed = meta.gen_range(0u64..1000);
            let m = meta.gen_range(1u32..6);
            let n = meta.gen_range(4usize..20);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let g = generators::barabasi_albert(150, 3, &mut rng);
            let mut freq = vec![0u32; g.num_nodes()];
            let c = freq_sampling_container(&g, &mut freq, &cfg(n, m, 1.0), &mut rng).unwrap();
            assert!(c.max_occurrence() <= m, "seed {seed} m {m} n {n}");
        }
    }
}

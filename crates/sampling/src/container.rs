//! The subgraph container `G_sub` with occurrence accounting.

use privim_graph::{induced_subgraph, Graph, NodeId, Subgraph};

/// Pool of training subgraphs plus per-node occurrence counts over the
/// *original* graph — the empirical counterpart of the `N_g` / `M` bounds
/// in Lemmas 1–2 and §IV-D.
pub struct SubgraphContainer {
    /// The extracted subgraphs (each carries its original-id mapping).
    pub subgraphs: Vec<Subgraph>,
    occurrences: Vec<u32>,
}

impl SubgraphContainer {
    /// Empty container over a graph with `num_nodes` nodes.
    pub fn new(num_nodes: usize) -> Self {
        SubgraphContainer {
            subgraphs: Vec::new(),
            occurrences: vec![0; num_nodes],
        }
    }

    /// Build a container by inducing each node set from `g`. Node sets must
    /// be in `g`'s id space.
    pub fn from_node_sets(g: &Graph, sets: &[Vec<NodeId>]) -> Self {
        let mut c = SubgraphContainer::new(g.num_nodes());
        for set in sets {
            c.push(induced_subgraph(g, set));
        }
        c
    }

    /// Add a subgraph, updating occurrence counts.
    pub fn push(&mut self, s: Subgraph) {
        for &orig in &s.original {
            self.occurrences[orig as usize] += 1;
        }
        self.subgraphs.push(s);
    }

    /// Merge another container (BES joins the two stages' pools). Both must
    /// cover the same original graph.
    pub fn merge(&mut self, other: SubgraphContainer) {
        assert_eq!(
            self.occurrences.len(),
            other.occurrences.len(),
            "containers over different graphs"
        );
        for (a, b) in self.occurrences.iter_mut().zip(&other.occurrences) {
            *a += b;
        }
        self.subgraphs.extend(other.subgraphs);
    }

    /// Number of subgraphs `m = |G_sub|`.
    pub fn len(&self) -> usize {
        self.subgraphs.len()
    }

    /// True if the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.subgraphs.is_empty()
    }

    /// How many subgraphs contain original node `v`.
    pub fn occurrence(&self, v: NodeId) -> u32 {
        self.occurrences[v as usize]
    }

    /// Maximum occurrence over all nodes — must stay ≤ the theoretical
    /// bound fed to the accountant.
    pub fn max_occurrence(&self) -> u32 {
        self.occurrences.iter().copied().max().unwrap_or(0)
    }

    /// How many subgraphs contain *both* endpoints — the edge-level
    /// occurrence the edge-DP extension bounds. Always ≤
    /// `min(occurrence(u), occurrence(v))`.
    pub fn edge_occurrence(&self, u: NodeId, v: NodeId) -> u32 {
        self.subgraphs
            .iter()
            .filter(|s| s.local_id(u).is_some() && s.local_id(v).is_some())
            .count() as u32
    }

    /// Mean subgraph size (diagnostics).
    pub fn mean_size(&self) -> f64 {
        if self.subgraphs.is_empty() {
            return 0.0;
        }
        self.subgraphs.iter().map(|s| s.len()).sum::<usize>() as f64 / self.subgraphs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_graph::generators;
    use privim_rt::ChaCha8Rng;
    use privim_rt::SeedableRng;

    #[test]
    fn occurrences_count_memberships() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = generators::barabasi_albert(50, 3, &mut rng);
        let sets = vec![vec![0u32, 1, 2], vec![2, 3], vec![2, 0]];
        let c = SubgraphContainer::from_node_sets(&g, &sets);
        assert_eq!(c.len(), 3);
        assert_eq!(c.occurrence(2), 3);
        assert_eq!(c.occurrence(0), 2);
        assert_eq!(c.occurrence(4), 0);
        assert_eq!(c.max_occurrence(), 3);
    }

    #[test]
    fn merge_adds_counts() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = generators::barabasi_albert(20, 2, &mut rng);
        let mut a = SubgraphContainer::from_node_sets(&g, &[vec![0, 1]]);
        let b = SubgraphContainer::from_node_sets(&g, &[vec![1, 2], vec![1, 3]]);
        a.merge(b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.occurrence(1), 3);
        assert!((a.mean_size() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn edge_occurrence_bounded_by_node_occurrences() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = generators::barabasi_albert(60, 3, &mut rng);
        let sets = vec![vec![0u32, 1, 2], vec![1, 2, 3], vec![0, 3]];
        let c = SubgraphContainer::from_node_sets(&g, &sets);
        assert_eq!(c.edge_occurrence(1, 2), 2);
        assert_eq!(c.edge_occurrence(0, 3), 1);
        assert_eq!(c.edge_occurrence(0, 4), 0);
        for (u, v) in [(1u32, 2u32), (0, 3), (2, 3)] {
            assert!(c.edge_occurrence(u, v) <= c.occurrence(u).min(c.occurrence(v)));
        }
    }

    #[test]
    fn empty_container() {
        let c = SubgraphContainer::new(10);
        assert!(c.is_empty());
        assert_eq!(c.max_occurrence(), 0);
        assert_eq!(c.mean_size(), 0.0);
    }
}

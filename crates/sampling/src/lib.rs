#![warn(missing_docs)]
//! # privim-sampling
//!
//! The subgraph-extraction machinery of PrivIM:
//!
//! - [`rwr`] — Algorithm 1: random-walk-with-restart extraction on a
//!   θ-bounded graph, constrained to the r-hop neighbourhood of the start
//!   node (the naive PrivIM sampler).
//! - [`freq`] — the `FreqSampling` routine of Algorithm 3: adaptive
//!   frequency sampling with per-node decay (Eq. 9) and a hard occurrence
//!   threshold `M` (the SCS stage).
//! - [`dual_stage`] — Algorithm 3 end-to-end: SCS followed by
//!   Boundary-Enhanced Sampling on the residual graph.
//! - [`container`] — the subgraph container `G_sub` with per-node occurrence
//!   accounting (the quantity the privacy proofs bound).
//! - [`indicator`] — the Gamma-pdf parameter-selection indicator `I(n, M)`
//!   of §IV-C with the least-squares fitting of Appendix H.
//!
//! ## Privacy invariants
//!
//! The whole privacy analysis rests on occurrence bounds that these samplers
//! must enforce *by construction*:
//!
//! - Algorithm 1 on a θ-bounded graph: max occurrence ≤ `N_g = Σ θ^i`
//!   (Lemma 1).
//! - Algorithm 3: max occurrence ≤ `M` (both stages share one frequency
//!   budget).
//!
//! Property tests in each module check these invariants on random graphs.

pub mod container;
pub mod dual_stage;
pub mod freq;
pub mod indicator;
pub mod rwr;

pub use container::SubgraphContainer;
pub use dual_stage::{dual_stage_sampling, DualStageConfig};
pub use freq::{freq_sampling, FreqConfig};
pub use indicator::{Indicator, IndicatorParams};
pub use rwr::{extract_subgraphs, RwrConfig};

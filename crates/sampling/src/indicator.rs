//! The parameter-selection indicator `I(n, M)` of §IV-C and Appendix H.
//!
//! The paper observes that utility is unimodal in both the subgraph size `n`
//! and the threshold `M`, and models the trend with Gamma-distribution pdfs
//! whose shape parameters depend on the dataset size:
//!
//! - `ξ(x; β, ψ)` — Gamma pdf (Eq. 11),
//! - `I(n, M) = (ξ(n) + ξ(M)) / max(ξ(n) + ξ(M))` (Eq. 10),
//! - `β_n = k_n ln|V| + b_n`, `β_M = k_M / ln|V| + b_M` (Eq. 12).
//!
//! Appendix H fits `k, b` by least squares from prior `(|V|, n*)` and
//! `(|V|, M*)` observations using the Gamma mode `x* = (β − 1)ψ` (Eq. 46):
//! `n/ψ_n = k_n ln|V| + b_n − 1` (Eq. 47) and the mirrored Eq. 50/51 for `M`.

use privim_dp::math::{gamma_mode, gamma_pdf};

/// Fitted indicator parameters. The paper's published values:
/// `ψ_n = 25, k_n = 0.47, b_n = −1.03, ψ_M = 5, k_M = 4.02, b_M = 1.22`.
#[derive(Clone, Copy, Debug)]
pub struct IndicatorParams {
    /// Scale for the subgraph-size pdf.
    pub psi_n: f64,
    /// Slope of `β_n` versus `ln|V|`.
    pub k_n: f64,
    /// Intercept of `β_n`.
    pub b_n: f64,
    /// Scale for the threshold pdf.
    pub psi_m: f64,
    /// Slope of `β_M` versus `1/ln|V|`.
    pub k_m: f64,
    /// Intercept of `β_M`.
    pub b_m: f64,
}

impl IndicatorParams {
    /// The constants published in §V-D / Appendix H.
    pub fn paper_values() -> Self {
        IndicatorParams {
            psi_n: 25.0,
            k_n: 0.47,
            b_n: -1.03,
            psi_m: 5.0,
            k_m: 4.02,
            b_m: 1.22,
        }
    }

    /// Fit `k_n, b_n, k_m, b_m` from prior observations of the optimal
    /// `(n*, M*)` per dataset size, with fixed scales `ψ_n, ψ_M`
    /// (Eqs. 48–51). Needs at least two observations.
    pub fn fit(
        psi_n: f64,
        psi_m: f64,
        observations: &[(usize, f64, f64)], // (|V|, n*, M*)
    ) -> Self {
        assert!(observations.len() >= 2, "need at least two observations");
        // Eq. 47: n/ψ_n = k_n ln|V| + (b_n − 1) — least squares on
        // x = ln|V|, y = n/ψ_n.
        let (k_n, c_n) = least_squares(
            observations
                .iter()
                .map(|&(v, n, _)| ((v as f64).ln(), n / psi_n)),
        );
        // Eqs. 50–51: M/ψ_M = k_M ln(1/|V|)⁻¹... the paper regresses on
        // x = 1/ln|V| (matching β_M = k_M / ln|V| + b_M and the mode rule).
        let (k_m, c_m) = least_squares(
            observations
                .iter()
                .map(|&(v, _, m)| (1.0 / (v as f64).ln(), m / psi_m)),
        );
        IndicatorParams {
            psi_n,
            k_n,
            b_n: c_n + 1.0, // mode rule shifts the intercept by 1 (Eq. 49)
            psi_m,
            k_m,
            b_m: c_m + 1.0,
        }
    }

    /// Shape `β_n` for a dataset with `v` nodes (Eq. 12).
    pub fn beta_n(&self, v: usize) -> f64 {
        self.k_n * (v as f64).ln() + self.b_n
    }

    /// Shape `β_M` for a dataset with `v` nodes (Eq. 12).
    pub fn beta_m(&self, v: usize) -> f64 {
        self.k_m / (v as f64).ln() + self.b_m
    }
}

/// Ordinary least squares `y = kx + c` over an iterator of `(x, y)`.
fn least_squares(points: impl Iterator<Item = (f64, f64)>) -> (f64, f64) {
    let pts: Vec<(f64, f64)> = points.collect();
    let t = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = t * sxx - sx * sx;
    assert!(denom.abs() > 1e-12, "degenerate regression inputs");
    let k = (t * sxy - sx * sy) / denom;
    let c = (sy - k * sx) / t;
    (k, c)
}

/// The indicator itself, specialised to one dataset size.
#[derive(Clone, Copy, Debug)]
pub struct Indicator {
    params: IndicatorParams,
    beta_n: f64,
    beta_m: f64,
}

impl Indicator {
    /// Indicator for a dataset with `num_nodes` nodes.
    pub fn for_dataset(params: IndicatorParams, num_nodes: usize) -> Self {
        assert!(num_nodes >= 2, "need ln|V| > 0");
        Indicator {
            params,
            beta_n: params.beta_n(num_nodes),
            beta_m: params.beta_m(num_nodes),
        }
    }

    /// Unnormalised score `ξ(n) + ξ(M)`.
    pub fn raw_score(&self, n: f64, m: f64) -> f64 {
        gamma_pdf(n, self.beta_n.max(1e-6), self.params.psi_n)
            + gamma_pdf(m, self.beta_m.max(1e-6), self.params.psi_m)
    }

    /// Eq. 10: score normalised by the maximum over the candidate grid.
    /// Returns `(values, max_index)` aligned with `candidates`.
    pub fn normalized_over(&self, candidates: &[(f64, f64)]) -> (Vec<f64>, usize) {
        assert!(!candidates.is_empty());
        let raw: Vec<f64> = candidates
            .iter()
            .map(|&(n, m)| self.raw_score(n, m))
            .collect();
        let (max_i, &max_v) = raw
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            // privim-lint: allow(panic, reason = "candidates asserted non-empty above, so max_by on it is always Some")
            .unwrap();
        let vals = raw
            .iter()
            .map(|&x| if max_v > 0.0 { x / max_v } else { 0.0 })
            .collect();
        (vals, max_i)
    }

    /// Grid search: the `(n, M)` pair maximising the indicator — the
    /// paper's cheap alternative to running the whole pipeline per
    /// parameter setting.
    pub fn best_parameters(&self, n_grid: &[usize], m_grid: &[u32]) -> (usize, u32) {
        let mut best = (n_grid[0], m_grid[0]);
        let mut best_score = f64::NEG_INFINITY;
        for &n in n_grid {
            for &m in m_grid {
                let s = self.raw_score(n as f64, m as f64);
                if s > best_score {
                    best_score = s;
                    best = (n, m);
                }
            }
        }
        best
    }

    /// Predicted optimum via the Gamma modes (continuous, no grid).
    pub fn predicted_optimum(&self) -> (f64, f64) {
        (
            gamma_mode(self.beta_n, self.params.psi_n),
            gamma_mode(self.beta_m, self.params.psi_m),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_predict_larger_n_for_larger_datasets() {
        let p = IndicatorParams::paper_values();
        let small = Indicator::for_dataset(p, 1_000);
        let large = Indicator::for_dataset(p, 196_000);
        let (n_small, m_small) = small.predicted_optimum();
        let (n_large, m_large) = large.predicted_optimum();
        assert!(n_large > n_small, "n* should grow with |V|");
        assert!(m_large < m_small, "M* should shrink with |V|");
    }

    #[test]
    fn paper_values_give_plausible_optima() {
        // §V-C: peak M around 4-10, peak n around 20-80 for these datasets.
        let p = IndicatorParams::paper_values();
        for v in [1_000usize, 7_600, 22_500, 196_000] {
            let ind = Indicator::for_dataset(p, v);
            let (n_star, m_star) = ind.predicted_optimum();
            // Fig. 7: Gowalla's utility keeps rising through n = 80, so a
            // predicted optimum slightly beyond the tested grid is faithful.
            assert!((10.0..=100.0).contains(&n_star), "|V|={v}: n*={n_star}");
            assert!((2.0..=14.0).contains(&m_star), "|V|={v}: M*={m_star}");
        }
    }

    #[test]
    fn normalized_peaks_at_one() {
        let p = IndicatorParams::paper_values();
        let ind = Indicator::for_dataset(p, 7_600);
        let grid: Vec<(f64, f64)> = (1..=8)
            .flat_map(|m| (1..=8).map(move |n| ((n * 10) as f64, m as f64)))
            .collect();
        let (vals, max_i) = ind.normalized_over(&grid);
        assert!((vals[max_i] - 1.0).abs() < 1e-12);
        assert!(vals.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn grid_search_matches_mode_region() {
        let p = IndicatorParams::paper_values();
        let ind = Indicator::for_dataset(p, 22_500);
        let (n_star, m_star) = ind.predicted_optimum();
        let (n_best, m_best) =
            ind.best_parameters(&[10, 20, 30, 40, 50, 60, 70, 80], &[2, 4, 6, 8, 10]);
        assert!(
            (n_best as f64 - n_star).abs() <= 10.0,
            "grid n {n_best} vs mode {n_star}"
        );
        assert!(
            (m_best as f64 - m_star).abs() <= 2.0,
            "grid M {m_best} vs mode {m_star}"
        );
    }

    #[test]
    fn fit_recovers_generating_line() {
        // Synthesise observations exactly on a known line and check the
        // regression recovers it.
        let (psi_n, psi_m) = (25.0, 5.0);
        let (k_n, b_n) = (0.5, -1.0);
        let (k_m, b_m) = (4.0, 1.2);
        let obs: Vec<(usize, f64, f64)> = [1_000usize, 5_000, 20_000, 100_000]
            .iter()
            .map(|&v| {
                let lnv = (v as f64).ln();
                let n_star = (k_n * lnv + b_n - 1.0) * psi_n;
                let m_star = (k_m / lnv + b_m - 1.0) * psi_m;
                (v, n_star, m_star)
            })
            .collect();
        let fit = IndicatorParams::fit(psi_n, psi_m, &obs);
        assert!((fit.k_n - k_n).abs() < 1e-9, "k_n {}", fit.k_n);
        assert!((fit.b_n - b_n).abs() < 1e-9, "b_n {}", fit.b_n);
        assert!((fit.k_m - k_m).abs() < 1e-9, "k_m {}", fit.k_m);
        assert!((fit.b_m - b_m).abs() < 1e-9, "b_m {}", fit.b_m);
    }

    #[test]
    fn indicator_is_unimodal_in_each_axis() {
        let p = IndicatorParams::paper_values();
        let ind = Indicator::for_dataset(p, 12_000);
        // along n with M fixed: strictly rises then falls
        let scores: Vec<f64> = (5..=100)
            .step_by(5)
            .map(|n| ind.raw_score(n as f64, 6.0))
            .collect();
        let peak = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        for w in scores[..=peak].windows(2) {
            assert!(w[1] >= w[0], "not rising before peak");
        }
        for w in scores[peak..].windows(2) {
            assert!(w[1] <= w[0], "not falling after peak");
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn fit_needs_two_points() {
        IndicatorParams::fit(25.0, 5.0, &[(1_000, 30.0, 6.0)]);
    }
}

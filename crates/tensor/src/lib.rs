#![warn(missing_docs)]
//! # privim-tensor
//!
//! A minimal, self-contained reverse-mode automatic-differentiation engine
//! sized for the PrivIM workload: small dense matrices (subgraphs have at
//! most ~80 nodes, hidden width 32) flowing through graph message-passing
//! operators (sparse matrix × dense matrix, edge gather/scatter, segment
//! softmax) plus the usual dense ops (matmul, elementwise nonlinearities,
//! reductions).
//!
//! The paper's reference implementation uses PyTorch; this crate replaces it
//! per the substitution policy in DESIGN.md. Backward passes are verified
//! against central finite differences by property tests (`gradcheck`).
//!
//! ## Example
//!
//! ```
//! use privim_tensor::{Matrix, Tape};
//!
//! let w = Matrix::from_rows(&[&[0.5, -0.2], &[0.1, 0.3]]);
//! let x = Matrix::from_rows(&[&[1.0, 2.0]]);
//! let mut tape = Tape::new();
//! let wv = tape.leaf(w);
//! let xv = tape.leaf(x);
//! let y = tape.matmul(xv, wv);
//! let s = tape.sigmoid(y);
//! let loss = tape.sum(s);
//! let grads = tape.backward(loss);
//! assert_eq!(grads.wrt(wv).rows(), 2);
//! ```

pub mod gradcheck;
pub mod init;
pub mod matrix;
pub mod optim;
pub mod pool;
pub mod quant;
pub mod simd;
pub mod sparse;
pub mod tape;

pub use matrix::Matrix;
pub use optim::{Adam, GradClip, Optimizer, Sgd};
pub use quant::QuantWeights;
pub use sparse::SparseMatrix;
pub use tape::{Gradients, Tape, Var};

//! Dense row-major `f64` matrix with the arithmetic the autograd tape needs.

use crate::pool::{self, AlignedBuf};
use crate::simd;
use std::fmt;

/// Fused multiply-adds (or element writes) below which a kernel stays on
/// the calling thread: pool dispatch costs microseconds, and the tiny
/// per-sample matrices of DP-SGD must not pay it. The batch loop above
/// them is already parallel.
const MIN_PAR_WORK: usize = 1 << 16;

/// `k`-dimension tile for [`Matrix::matmul`]: one rhs panel of `KB` rows is
/// swept repeatedly while it is cache-hot.
const KB: usize = 64;

/// `j`-dimension (output width) tile for [`Matrix::matmul`].
const JB: usize = 256;

/// Square tile edge for the blocked [`Matrix::transpose`].
const TB: usize = 32;

/// Dense row-major matrix.
///
/// Sized for PrivIM's workload (≤ a few hundred thousand rows × 32
/// columns). Backing buffers come from the thread-local [`pool`] (64-byte
/// aligned, so the [`simd`] backends never take a split load), and the
/// heavy kernels (`matmul`, `transpose`) are cache-blocked and
/// row-parallel on `privim_rt::par` — each output row is produced by
/// exactly one worker with a chunk-independent accumulation order, so
/// results are bit-identical at any thread count *and* any `PRIVIM_SIMD`
/// backend (see the determinism contract in [`simd`]).
#[derive(PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: AlignedBuf,
}

impl Clone for Matrix {
    fn clone(&self) -> Matrix {
        let mut data = pool::acquire(self.data.len());
        data.extend_from_slice(&self.data);
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    fn clone_from(&mut self, src: &Matrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }
}

impl Drop for Matrix {
    fn drop(&mut self) {
        pool::release(std::mem::take(&mut self.data));
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// All-zero matrix (buffer drawn from the thread-local pool).
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix::full(rows, cols, 0.0)
    }

    /// Matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        let n = rows * cols;
        let mut data = pool::acquire(n);
        data.resize(n, value);
        Matrix { rows, cols, data }
    }

    /// Build from a row-major data vector. Panics on shape mismatch.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        let mut buf = pool::acquire(data.len());
        buf.extend_from_slice(&data);
        Matrix {
            rows,
            cols,
            data: buf,
        }
    }

    /// JSON form: `{"rows": r, "cols": c, "data": [..]}` with exact `f64`
    /// round-trip (model checkpoints rely on bit-identical reload).
    pub fn to_json(&self) -> privim_rt::json::Value {
        use privim_rt::json::{ToJson, Value};
        Value::obj(vec![
            ("rows", self.rows.to_json()),
            ("cols", self.cols.to_json()),
            ("data", self.data.as_slice().to_json()),
        ])
    }

    /// Parse the [`Self::to_json`] form.
    pub fn from_json(v: &privim_rt::json::Value) -> Result<Matrix, String> {
        let rows = v
            .get("rows")
            .and_then(|x| x.as_usize())
            .ok_or("matrix: missing rows")?;
        let cols = v
            .get("cols")
            .and_then(|x| x.as_usize())
            .ok_or("matrix: missing cols")?;
        let data: Vec<f64> = v
            .get("data")
            .and_then(|x| x.as_array())
            .ok_or("matrix: missing data")?
            .iter()
            .map(|x| x.as_f64().ok_or("matrix: non-numeric entry".to_string()))
            .collect::<Result<_, _>>()?;
        if data.len() != rows * cols {
            return Err(format!("matrix: {} entries for {rows}x{cols}", data.len()));
        }
        Ok(Matrix::from_vec(rows, cols, data))
    }

    /// Build from row slices (test convenience).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = pool::acquire(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Column vector from a slice.
    pub fn col_vector(values: &[f64]) -> Self {
        let mut data = pool::acquire(values.len());
        data.extend_from_slice(values);
        Matrix {
            rows: values.len(),
            cols: 1,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Raw row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutation.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row access.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self × rhs`. Panics on inner-dimension mismatch.
    ///
    /// Cache-blocked (`KB × JB` tiles over the rhs) and row-parallel: big
    /// products split their output rows into one contiguous chunk per pool
    /// worker. Every output element accumulates its `k`-terms in the same
    /// fixed order (tile-major, ascending) no matter how rows are
    /// partitioned, so the result is bit-identical at any thread count.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul {}x{} × {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let (m, k, n) = (self.rows, self.cols, rhs.cols);
        let mut out = Matrix::zeros(m, n);
        if m == 0 || k == 0 || n == 0 {
            return out;
        }
        if m * k * n < MIN_PAR_WORK || privim_rt::par::num_threads() <= 1 {
            self.matmul_rows(rhs, 0, &mut out.data);
        } else {
            privim_rt::par::for_each_row_chunk(&mut out.data, n, |r0, chunk| {
                self.matmul_rows(rhs, r0, chunk);
            });
        }
        out
    }

    /// Tiled ikj kernel for output rows `r0 .. r0 + out_chunk.len()/n`.
    fn matmul_rows(&self, rhs: &Matrix, r0: usize, out_chunk: &mut [f64]) {
        let k = self.cols;
        let n = rhs.cols;
        let rows = out_chunk.len() / n;
        for kk in (0..k).step_by(KB) {
            let kend = (kk + KB).min(k);
            for jj in (0..n).step_by(JB) {
                let jend = (jj + JB).min(n);
                for i in 0..rows {
                    let arow = &self.data[(r0 + i) * k..(r0 + i + 1) * k];
                    let orow = &mut out_chunk[i * n + jj..i * n + jend];
                    for (kx, &aik) in arow[kk..kend].iter().enumerate() {
                        // privim-lint: allow(float-eq, reason = "exact-zero sparsity skip: 0.0 * bkj contributes exactly nothing, so skipping only IEEE zeros is lossless")
                        if aik == 0.0 {
                            continue;
                        }
                        let bbase = (kk + kx) * n;
                        // elementwise axpy: each output element keeps its
                        // k-ascending accumulation order on every backend
                        simd::axpy(orow, aik, &rhs.data[bbase + jj..bbase + jend]);
                    }
                }
            }
        }
    }

    /// Transpose (blocked `TB × TB` tiles; large matrices are parallel over
    /// output-row chunks — pure disjoint writes, so trivially
    /// deterministic).
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        if self.rows == 0 || self.cols == 0 {
            return out;
        }
        if self.rows * self.cols < MIN_PAR_WORK || privim_rt::par::num_threads() <= 1 {
            self.transpose_rows(0, &mut out.data);
        } else {
            privim_rt::par::for_each_row_chunk(&mut out.data, self.rows, |c0, chunk| {
                self.transpose_rows(c0, chunk);
            });
        }
        out
    }

    /// Blocked transpose into output rows (= source columns)
    /// `c0 .. c0 + out_chunk.len()/rows`.
    fn transpose_rows(&self, c0: usize, out_chunk: &mut [f64]) {
        let (r, c) = (self.rows, self.cols);
        let width = out_chunk.len() / r;
        for rr in (0..r).step_by(TB) {
            let rend = (rr + TB).min(r);
            for cc in (0..width).step_by(TB) {
                let cend = (cc + TB).min(width);
                for cj in cc..cend {
                    let col = c0 + cj;
                    let orow = &mut out_chunk[cj * r..(cj + 1) * r];
                    for ri in rr..rend {
                        orow[ri] = self.data[ri * c + col];
                    }
                }
            }
        }
    }

    /// Elementwise sum with `rhs` (same shape).
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a + b)
    }

    /// Elementwise difference (same shape).
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a - b)
    }

    /// Hadamard (elementwise) product (same shape).
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a * b)
    }

    /// Elementwise combine (same shape).
    pub fn zip(&self, rhs: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch");
        let mut data = pool::acquire(self.data.len());
        data.extend_iter(self.data.iter().zip(rhs.data.iter()).map(|(&a, &b)| f(a, b)));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        let mut data = pool::acquire(self.data.len());
        data.extend_iter(self.data.iter().map(|&x| f(x)));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scale by a constant.
    pub fn scale(&self, c: f64) -> Matrix {
        self.map(|x| x * c)
    }

    /// In-place `self += rhs` (same shape).
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch");
        simd::add_assign(&mut self.data, &rhs.data);
    }

    /// In-place scaled accumulate `self += c * rhs`.
    pub fn add_scaled_assign(&mut self, rhs: &Matrix, c: f64) {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch");
        simd::axpy(&mut self.data, c, &rhs.data);
    }

    /// Sum of all elements ([`simd`] 4-lane reduction contract).
    pub fn sum(&self) -> f64 {
        simd::sum(&self.data)
    }

    /// Frobenius (flattened `l2`) norm — the norm DP-SGD clips
    /// ([`simd`] 4-lane reduction contract).
    pub fn frobenius_norm(&self) -> f64 {
        simd::sumsq(&self.data).sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }

    /// True if any entry is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Horizontal concatenation `[self | rhs]` (same row count).
    pub fn concat_cols(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "row mismatch in concat");
        let cols = self.cols + rhs.cols;
        let mut out = Matrix::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(rhs.row(r));
        }
        out
    }

    /// Indices of the `k` largest entries of a column vector, descending.
    /// Ties broken by lower index. Panics unless `cols == 1`.
    pub fn top_k_rows(&self, k: usize) -> Vec<usize> {
        assert_eq!(self.cols, 1, "top_k_rows needs a column vector");
        let mut idx: Vec<usize> = (0..self.rows).collect();
        idx.sort_by(|&a, &b| {
            self.data[b]
                .partial_cmp(&self.data[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_involutive() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.add(&b).data(), &[4.0, 2.0]);
        assert_eq!(a.sub(&b).data(), &[-2.0, -6.0]);
        assert_eq!(a.hadamard(&b).data(), &[3.0, -8.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, -4.0]);
        assert_eq!(a.map(f64::abs).data(), &[1.0, 2.0]);
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.sum(), 7.0);
        assert!(!a.has_non_finite());
        let n = Matrix::from_rows(&[&[f64::NAN]]);
        assert!(n.has_non_finite());
    }

    #[test]
    fn concat_cols_places_blocks() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let c = a.concat_cols(&b);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1.0, 3.0, 4.0]);
        assert_eq!(c.row(1), &[2.0, 5.0, 6.0]);
    }

    #[test]
    fn top_k_descending_with_tie_break() {
        let v = Matrix::col_vector(&[0.1, 0.9, 0.5, 0.9]);
        assert_eq!(v.top_k_rows(3), vec![1, 3, 2]);
        assert_eq!(v.top_k_rows(0), Vec::<usize>::new());
        assert_eq!(v.top_k_rows(10).len(), 4);
    }

    /// Deterministic pseudo-random fill without touching the RNG crate.
    fn test_matrix(rows: usize, cols: usize, salt: usize) -> Matrix {
        Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|i| ((i * 37 + salt * 11) % 23) as f64 - 11.0)
                .collect(),
        )
    }

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    // mirror the kernel's exact-zero skip so the
                    // accumulation sequences are term-for-term identical
                    if a.get(i, k) != 0.0 {
                        s += a.get(i, k) * b.get(k, j);
                    }
                }
                out.set(i, j, s);
            }
        }
        out
    }

    #[test]
    fn tiled_matmul_bitwise_matches_naive_across_tile_edges() {
        // shapes straddling the KB/JB/TB tile boundaries, including the
        // large case that takes the parallel path when threads > 1
        for (m, k, n) in [(1, 1, 1), (3, 5, 2), (65, 64, 33), (41, 130, 259)] {
            let a = test_matrix(m, k, 1);
            let b = test_matrix(k, n, 2);
            assert_eq!(a.matmul(&b), naive_matmul(&a, &b), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn blocked_transpose_matches_elementwise() {
        let a = test_matrix(67, 41, 3);
        let t = a.transpose();
        assert_eq!(t.shape(), (41, 67));
        for r in 0..67 {
            for c in 0..41 {
                assert_eq!(t.get(c, r), a.get(r, c));
            }
        }
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn pooled_buffers_never_leak_stale_values() {
        // churn the pool with junk, then verify fresh constructors are clean
        for salt in 0..8 {
            let junk = test_matrix(50, 50, salt);
            drop(junk);
        }
        assert!(Matrix::zeros(40, 40).data().iter().all(|&x| x == 0.0));
        assert!(Matrix::full(30, 30, 2.5).data().iter().all(|&x| x == 2.5));
        let m = test_matrix(20, 20, 9);
        assert_eq!(m.clone(), m);
        assert_eq!(m.map(|x| x + 1.0).get(0, 0), m.get(0, 0) + 1.0);
    }

    #[test]
    fn matrix_allocations_are_simd_aligned() {
        // every constructor path must come out of the aligned pool
        for (r, c) in [(1, 1), (3, 7), (40, 40), (65, 33)] {
            let m = Matrix::zeros(r, c);
            assert_eq!(m.data().as_ptr() as usize % pool::ALIGN, 0, "zeros {r}x{c}");
            let k = m.clone();
            assert_eq!(k.data().as_ptr() as usize % pool::ALIGN, 0, "clone {r}x{c}");
            let t = m.transpose();
            assert_eq!(t.data().as_ptr() as usize % pool::ALIGN, 0, "transpose {r}x{c}");
        }
        let v = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(v.data().as_ptr() as usize % pool::ALIGN, 0, "from_vec");
        let r = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(r.data().as_ptr() as usize % pool::ALIGN, 0, "from_rows");
        let c = Matrix::col_vector(&[1.0, 2.0, 3.0]);
        assert_eq!(c.data().as_ptr() as usize % pool::ALIGN, 0, "col_vector");
    }

    #[test]
    fn accumulate_ops() {
        let mut a = Matrix::from_rows(&[&[1.0, 1.0]]);
        let b = Matrix::from_rows(&[&[2.0, 3.0]]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[3.0, 4.0]);
        a.add_scaled_assign(&b, -1.0);
        assert_eq!(a.data(), &[1.0, 1.0]);
    }
}

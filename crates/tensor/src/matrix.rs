//! Dense row-major `f64` matrix with the arithmetic the autograd tape needs.

use std::fmt;

/// Dense row-major matrix.
///
/// Sized for PrivIM's workload (≤ a few hundred thousand rows × 32 columns);
/// all operations are straightforward loops — at these shapes cache-friendly
/// row-major traversal beats anything fancier.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Build from a row-major data vector. Panics on shape mismatch.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// JSON form: `{"rows": r, "cols": c, "data": [..]}` with exact `f64`
    /// round-trip (model checkpoints rely on bit-identical reload).
    pub fn to_json(&self) -> privim_rt::json::Value {
        use privim_rt::json::{ToJson, Value};
        Value::obj(vec![
            ("rows", self.rows.to_json()),
            ("cols", self.cols.to_json()),
            ("data", self.data.to_json()),
        ])
    }

    /// Parse the [`Self::to_json`] form.
    pub fn from_json(v: &privim_rt::json::Value) -> Result<Matrix, String> {
        let rows = v
            .get("rows")
            .and_then(|x| x.as_usize())
            .ok_or("matrix: missing rows")?;
        let cols = v
            .get("cols")
            .and_then(|x| x.as_usize())
            .ok_or("matrix: missing cols")?;
        let data: Vec<f64> = v
            .get("data")
            .and_then(|x| x.as_array())
            .ok_or("matrix: missing data")?
            .iter()
            .map(|x| x.as_f64().ok_or("matrix: non-numeric entry".to_string()))
            .collect::<Result<_, _>>()?;
        if data.len() != rows * cols {
            return Err(format!("matrix: {} entries for {rows}x{cols}", data.len()));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Build from row slices (test convenience).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Column vector from a slice.
    pub fn col_vector(values: &[f64]) -> Self {
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Raw row-major data.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutation.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row access.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self × rhs`. Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul {}x{} × {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // ikj order: stream over rhs rows, accumulate into the output row.
        for i in 0..self.rows {
            let arow = self.row(i);
            let orow = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for (k, &aik) in arow.iter().enumerate() {
                // privim-lint: allow(float-eq, reason = "exact-zero sparsity skip: 0.0 * bkj contributes exactly nothing, so skipping only IEEE zeros is lossless")
                if aik == 0.0 {
                    continue;
                }
                let brow = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (j, &bkj) in brow.iter().enumerate() {
                    orow[j] += aik * bkj;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise sum with `rhs` (same shape).
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a + b)
    }

    /// Elementwise difference (same shape).
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a - b)
    }

    /// Hadamard (elementwise) product (same shape).
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        self.zip(rhs, |a, b| a * b)
    }

    /// Elementwise combine (same shape).
    pub fn zip(&self, rhs: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch");
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Scale by a constant.
    pub fn scale(&self, c: f64) -> Matrix {
        self.map(|x| x * c)
    }

    /// In-place `self += rhs` (same shape).
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// In-place scaled accumulate `self += c * rhs`.
    pub fn add_scaled_assign(&mut self, rhs: &Matrix, c: f64) {
        assert_eq!(self.shape(), rhs.shape(), "shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += c * b;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Frobenius (flattened `l2`) norm — the norm DP-SGD clips.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }

    /// True if any entry is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Horizontal concatenation `[self | rhs]` (same row count).
    pub fn concat_cols(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "row mismatch in concat");
        let cols = self.cols + rhs.cols;
        let mut out = Matrix::zeros(self.rows, cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(rhs.row(r));
        }
        out
    }

    /// Indices of the `k` largest entries of a column vector, descending.
    /// Ties broken by lower index. Panics unless `cols == 1`.
    pub fn top_k_rows(&self, k: usize) -> Vec<usize> {
        assert_eq!(self.cols, 1, "top_k_rows needs a column vector");
        let mut idx: Vec<usize> = (0..self.rows).collect();
        idx.sort_by(|&a, &b| {
            self.data[b]
                .partial_cmp(&self.data[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_involutive() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.add(&b).data(), &[4.0, 2.0]);
        assert_eq!(a.sub(&b).data(), &[-2.0, -6.0]);
        assert_eq!(a.hadamard(&b).data(), &[3.0, -8.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, -4.0]);
        assert_eq!(a.map(f64::abs).data(), &[1.0, 2.0]);
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.sum(), 7.0);
        assert!(!a.has_non_finite());
        let n = Matrix::from_rows(&[&[f64::NAN]]);
        assert!(n.has_non_finite());
    }

    #[test]
    fn concat_cols_places_blocks() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let c = a.concat_cols(&b);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1.0, 3.0, 4.0]);
        assert_eq!(c.row(1), &[2.0, 5.0, 6.0]);
    }

    #[test]
    fn top_k_descending_with_tie_break() {
        let v = Matrix::col_vector(&[0.1, 0.9, 0.5, 0.9]);
        assert_eq!(v.top_k_rows(3), vec![1, 3, 2]);
        assert_eq!(v.top_k_rows(0), Vec::<usize>::new());
        assert_eq!(v.top_k_rows(10).len(), 4);
    }

    #[test]
    fn accumulate_ops() {
        let mut a = Matrix::from_rows(&[&[1.0, 1.0]]);
        let b = Matrix::from_rows(&[&[2.0, 3.0]]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[3.0, 4.0]);
        a.add_scaled_assign(&b, -1.0);
        assert_eq!(a.data(), &[1.0, 1.0]);
    }
}

//! CSR sparse matrix for graph adjacency in message passing.
//!
//! GNN aggregation (Eq. 1 and the variants in Appendix G) is a sparse-dense
//! product `A · H` where `A` never needs gradients (the graph is data, not a
//! parameter). This type is the bridge between `privim-graph`'s CSR graphs
//! and the autograd tape's `spmm` op.

use crate::matrix::Matrix;

/// Immutable CSR sparse matrix (no gradient support — used as constants).
#[derive(Clone, Debug)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    offsets: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Build from (row, col, value) triplets. Duplicate coordinates are
    /// summed.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Self {
        let mut t: Vec<(usize, usize, f64)> = triplets.into_iter().collect();
        for &(r, c, _) in &t {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of bounds");
        }
        t.sort_unstable_by_key(|&(r, c, _)| (r, c));
        // merge duplicates
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(t.len());
        for (r, c, v) in t {
            if let Some(last) = merged.last_mut() {
                if last.0 == r && last.1 == c {
                    last.2 += v;
                    continue;
                }
            }
            merged.push((r, c, v));
        }
        let mut offsets = vec![0usize; rows + 1];
        for &(r, _, _) in &merged {
            offsets[r + 1] += 1;
        }
        for i in 0..rows {
            offsets[i + 1] += offsets[i];
        }
        SparseMatrix {
            rows,
            cols,
            offsets,
            col_idx: merged.iter().map(|&(_, c, _)| c as u32).collect(),
            values: merged.iter().map(|&(_, _, v)| v).collect(),
        }
    }

    /// Identity-free empty matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        SparseMatrix {
            rows,
            cols,
            offsets: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Non-zeros of row `r` as parallel `(cols, values)` slices.
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let s = self.offsets[r];
        let e = self.offsets[r + 1];
        (&self.col_idx[s..e], &self.values[s..e])
    }

    /// Dense product `self × dense` → `rows × dense.cols()`.
    pub fn spmm(&self, dense: &Matrix) -> Matrix {
        assert_eq!(self.cols, dense.rows(), "spmm inner dimension mismatch");
        let dc = dense.cols();
        let mut out = Matrix::zeros(self.rows, dc);
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            let orow = out.row_mut(r);
            for (&c, &v) in cols.iter().zip(vals) {
                let drow = dense.row(c as usize);
                for j in 0..dc {
                    orow[j] += v * drow[j];
                }
            }
        }
        out
    }

    /// Transposed product `selfᵀ × dense` → `cols × dense.cols()`. This is
    /// the backward pass of [`Self::spmm`] with respect to the dense input,
    /// computed without materialising the transpose.
    pub fn spmm_transpose(&self, dense: &Matrix) -> Matrix {
        assert_eq!(self.rows, dense.rows(), "spmm_t dimension mismatch");
        let dc = dense.cols();
        let mut out = Matrix::zeros(self.cols, dc);
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            let drow = dense.row(r).to_vec();
            for (&c, &v) in cols.iter().zip(vals) {
                let orow = out.row_mut(c as usize);
                for j in 0..dc {
                    orow[j] += v * drow[j];
                }
            }
        }
        out
    }

    /// Densify (tests only — O(rows × cols) memory).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                m.set(r, c as usize, v);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_merge_duplicates() {
        let s = SparseMatrix::from_triplets(2, 2, [(0, 1, 1.0), (0, 1, 2.0), (1, 0, 5.0)]);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.to_dense().get(0, 1), 3.0);
    }

    #[test]
    fn spmm_matches_dense_product() {
        let s = SparseMatrix::from_triplets(2, 3, [(0, 0, 2.0), (0, 2, 1.0), (1, 1, -1.0)]);
        let d = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let expect = s.to_dense().matmul(&d);
        assert_eq!(s.spmm(&d), expect);
    }

    #[test]
    fn spmm_transpose_matches_dense() {
        let s = SparseMatrix::from_triplets(2, 3, [(0, 0, 2.0), (0, 2, 1.0), (1, 1, -1.0)]);
        let d = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let expect = s.to_dense().transpose().matmul(&d);
        assert_eq!(s.spmm_transpose(&d), expect);
    }

    #[test]
    fn empty_rows_are_fine() {
        let s = SparseMatrix::zeros(3, 3);
        let d = Matrix::full(3, 2, 1.0);
        let out = s.spmm(&d);
        assert_eq!(out, Matrix::zeros(3, 2));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn triplet_out_of_bounds_panics() {
        let _ = SparseMatrix::from_triplets(2, 2, [(2, 0, 1.0)]);
    }
}

//! CSR sparse matrix for graph adjacency in message passing.
//!
//! GNN aggregation (Eq. 1 and the variants in Appendix G) is a sparse-dense
//! product `A · H` where `A` never needs gradients (the graph is data, not a
//! parameter). This type is the bridge between `privim-graph`'s CSR graphs
//! and the autograd tape's `spmm` op.

use crate::matrix::Matrix;
use std::sync::OnceLock;

/// Work (nnz × dense width) below which an spmm stays on the calling
/// thread — mirrors the dense kernels' threshold.
const MIN_PAR_WORK: usize = 1 << 16;

/// Immutable CSR sparse matrix (no gradient support — used as constants).
///
/// [`Self::spmm_transpose`] routes through a lazily-built, cached CSC view
/// (the transpose in CSR form), so the backward pass of message passing is
/// a plain row-parallel [`Self::spmm`] — no scattered writes, no per-row
/// dense copies.
#[derive(Clone, Debug)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    offsets: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
    /// Cached transpose; built on first `spmm_transpose` and invalidated
    /// by every value-mutating method (`values_mut` / `map_values`), so it
    /// can never serve stale coefficients. Within each transposed row the
    /// source-row indices ascend, which reproduces the exact accumulation
    /// order of the historical scatter loop.
    transposed: OnceLock<Box<SparseMatrix>>,
}

impl SparseMatrix {
    /// Build from (row, col, value) triplets. Duplicate coordinates are
    /// summed.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Self {
        let mut t: Vec<(usize, usize, f64)> = triplets.into_iter().collect();
        for &(r, c, _) in &t {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of bounds");
        }
        t.sort_unstable_by_key(|&(r, c, _)| (r, c));
        // merge duplicates
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(t.len());
        for (r, c, v) in t {
            if let Some(last) = merged.last_mut() {
                if last.0 == r && last.1 == c {
                    last.2 += v;
                    continue;
                }
            }
            merged.push((r, c, v));
        }
        let mut offsets = vec![0usize; rows + 1];
        for &(r, _, _) in &merged {
            offsets[r + 1] += 1;
        }
        for i in 0..rows {
            offsets[i + 1] += offsets[i];
        }
        SparseMatrix {
            rows,
            cols,
            offsets,
            col_idx: merged.iter().map(|&(_, c, _)| c as u32).collect(),
            values: merged.iter().map(|&(_, _, v)| v).collect(),
            transposed: OnceLock::new(),
        }
    }

    /// Identity-free empty matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        SparseMatrix {
            rows,
            cols,
            offsets: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
            transposed: OnceLock::new(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Non-zeros of row `r` as parallel `(cols, values)` slices.
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let s = self.offsets[r];
        let e = self.offsets[r + 1];
        (&self.col_idx[s..e], &self.values[s..e])
    }

    /// Mutable view of the stored values (CSR order: row-major, ascending
    /// column within each row). The sparsity *pattern* is fixed; only the
    /// coefficients can change (e.g. reweighting edges of a served graph).
    ///
    /// Taking this view **invalidates the cached transpose**: the next
    /// [`Self::spmm_transpose`] rebuilds it from the updated values, so a
    /// mutate-then-transpose sequence can never observe stale numbers.
    pub fn values_mut(&mut self) -> &mut [f64] {
        self.transposed.take();
        &mut self.values
    }

    /// Rewrite every stored value in place (`f(row, col, value)`), then
    /// invalidate the cached transpose — see [`Self::values_mut`].
    pub fn map_values(&mut self, f: impl Fn(usize, usize, f64) -> f64) {
        self.transposed.take();
        for r in 0..self.rows {
            let (s, e) = (self.offsets[r], self.offsets[r + 1]);
            for i in s..e {
                self.values[i] = f(r, self.col_idx[i] as usize, self.values[i]);
            }
        }
    }

    /// Dense product `self × dense` → `rows × dense.cols()`.
    ///
    /// Row-parallel: output rows are split into contiguous chunks, one per
    /// pool worker; row `r` depends only on sparse row `r`, so every output
    /// row is written by exactly one worker with the serial loop's
    /// accumulation order — bit-identical at any thread count.
    pub fn spmm(&self, dense: &Matrix) -> Matrix {
        assert_eq!(self.cols, dense.rows(), "spmm inner dimension mismatch");
        let dc = dense.cols();
        let mut out = Matrix::zeros(self.rows, dc);
        if self.rows == 0 || dc == 0 {
            return out;
        }
        if self.nnz() * dc < MIN_PAR_WORK || privim_rt::par::num_threads() <= 1 {
            self.spmm_rows(dense, 0, out.data_mut());
        } else {
            privim_rt::par::for_each_row_chunk(out.data_mut(), dc, |r0, chunk| {
                self.spmm_rows(dense, r0, chunk);
            });
        }
        out
    }

    /// Serial spmm kernel for output rows `r0 .. r0 + out_chunk.len()/dc`.
    fn spmm_rows(&self, dense: &Matrix, r0: usize, out_chunk: &mut [f64]) {
        let dc = dense.cols();
        for (local, orow) in out_chunk.chunks_mut(dc).enumerate() {
            let (cols, vals) = self.row(r0 + local);
            for (&c, &v) in cols.iter().zip(vals) {
                // elementwise axpy over the dense row: per-element
                // accumulation order is unchanged on every SIMD backend
                crate::simd::axpy(orow, v, dense.row(c as usize));
            }
        }
    }

    /// Transposed product `selfᵀ × dense` → `cols × dense.cols()`. This is
    /// the backward pass of [`Self::spmm`] with respect to the dense input.
    ///
    /// Runs as a row-parallel [`Self::spmm`] over the cached transpose
    /// ([`Self::transposed`]): each output row is owned by one worker, and
    /// the ascending source-row order inside every transposed row
    /// reproduces the scatter loop's accumulation order exactly, so the
    /// result is bit-identical to the historical serial kernel.
    pub fn spmm_transpose(&self, dense: &Matrix) -> Matrix {
        assert_eq!(self.rows, dense.rows(), "spmm_t dimension mismatch");
        self.transposed().spmm(dense)
    }

    /// The cached CSR transpose, built on first use (counting sort over the
    /// column indices — deterministic, `O(nnz + cols)`).
    fn transposed(&self) -> &SparseMatrix {
        self.transposed.get_or_init(|| {
            let nnz = self.values.len();
            let mut offsets = vec![0usize; self.cols + 1];
            for &c in &self.col_idx {
                offsets[c as usize + 1] += 1;
            }
            for i in 0..self.cols {
                offsets[i + 1] += offsets[i];
            }
            let mut cursor = offsets[..self.cols].to_vec();
            let mut col_idx = vec![0u32; nnz];
            let mut values = vec![0.0f64; nnz];
            // ascending r per transposed row: the determinism anchor
            for r in 0..self.rows {
                let (cols, vals) = self.row(r);
                for (&c, &v) in cols.iter().zip(vals) {
                    let p = cursor[c as usize];
                    col_idx[p] = r as u32;
                    values[p] = v;
                    cursor[c as usize] += 1;
                }
            }
            Box::new(SparseMatrix {
                rows: self.cols,
                cols: self.rows,
                offsets,
                col_idx,
                values,
                transposed: OnceLock::new(),
            })
        })
    }

    /// Densify (tests only — O(rows × cols) memory).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                m.set(r, c as usize, v);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_merge_duplicates() {
        let s = SparseMatrix::from_triplets(2, 2, [(0, 1, 1.0), (0, 1, 2.0), (1, 0, 5.0)]);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.to_dense().get(0, 1), 3.0);
    }

    #[test]
    fn spmm_matches_dense_product() {
        let s = SparseMatrix::from_triplets(2, 3, [(0, 0, 2.0), (0, 2, 1.0), (1, 1, -1.0)]);
        let d = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let expect = s.to_dense().matmul(&d);
        assert_eq!(s.spmm(&d), expect);
    }

    #[test]
    fn spmm_transpose_matches_dense() {
        let s = SparseMatrix::from_triplets(2, 3, [(0, 0, 2.0), (0, 2, 1.0), (1, 1, -1.0)]);
        let d = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let expect = s.to_dense().transpose().matmul(&d);
        assert_eq!(s.spmm_transpose(&d), expect);
    }

    #[test]
    fn empty_rows_are_fine() {
        let s = SparseMatrix::zeros(3, 3);
        let d = Matrix::full(3, 2, 1.0);
        let out = s.spmm(&d);
        assert_eq!(out, Matrix::zeros(3, 2));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn triplet_out_of_bounds_panics() {
        let _ = SparseMatrix::from_triplets(2, 2, [(2, 0, 1.0)]);
    }

    #[test]
    fn cached_transpose_is_exact_and_reused() {
        let s = SparseMatrix::from_triplets(
            40,
            30,
            (0..40).flat_map(|r| {
                (0..30)
                    .filter(move |c| (r * 7 + c * 3) % 5 == 0)
                    .map(move |c| (r, c, (r * 31 + c) as f64 / 7.0 - 2.0))
            }),
        );
        let t = s.transposed();
        assert_eq!(t.rows(), 30);
        assert_eq!(t.cols(), 40);
        assert_eq!(t.nnz(), s.nnz());
        assert_eq!(t.to_dense(), s.to_dense().transpose());
        // second call hits the cache (same allocation)
        let p1 = s.transposed() as *const SparseMatrix;
        let p2 = s.transposed() as *const SparseMatrix;
        assert_eq!(p1, p2);
    }

    #[test]
    fn spmm_transpose_matches_dense_on_wide_input() {
        let s = SparseMatrix::from_triplets(
            25,
            18,
            (0..25).flat_map(|r| [(r, r % 18, 1.5 + r as f64), (r, (r * 5 + 2) % 18, -0.25)]),
        );
        let d = Matrix::from_vec(25, 7, (0..25 * 7).map(|i| (i % 13) as f64 - 6.0).collect());
        let expect = s.to_dense().transpose().matmul(&d);
        let got = s.spmm_transpose(&d);
        assert_eq!(got.shape(), expect.shape());
        for i in 0..got.rows() {
            for j in 0..got.cols() {
                assert!((got.get(i, j) - expect.get(i, j)).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn mutation_invalidates_cached_transpose() {
        let mut s = SparseMatrix::from_triplets(3, 4, [(0, 1, 2.0), (1, 3, -1.0), (2, 0, 0.5)]);
        let d = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, -4.0], &[0.5, 0.25]]);
        // populate the cache with the original values
        assert_eq!(s.spmm_transpose(&d), s.to_dense().transpose().matmul(&d));
        // mutate every coefficient through both mutation APIs
        for v in s.values_mut() {
            *v *= 3.0;
        }
        let after_scale = s.spmm_transpose(&d);
        assert_eq!(
            after_scale,
            s.to_dense().transpose().matmul(&d),
            "values_mut must invalidate the cached transpose"
        );
        s.map_values(|r, c, v| v + (r * 10 + c) as f64);
        let after_map = s.spmm_transpose(&d);
        assert_eq!(
            after_map,
            s.to_dense().transpose().matmul(&d),
            "map_values must invalidate the cached transpose"
        );
        assert_ne!(after_scale, after_map);
        // forward spmm (which never consults the cache) sees the mutated
        // values as well
        let d4 = Matrix::full(4, 2, 1.0);
        assert_eq!(s.spmm(&d4), s.to_dense().matmul(&d4));
    }

    #[test]
    fn mutation_keeps_pattern_and_rebuilds_cache_once() {
        let mut s = SparseMatrix::from_triplets(4, 4, [(0, 2, 1.0), (3, 1, 2.0)]);
        let _ = s.spmm_transpose(&Matrix::full(4, 1, 1.0));
        s.values_mut()[0] = 9.0;
        assert_eq!(s.nnz(), 2, "mutation must not change the pattern");
        // the rebuilt cache is again stable across calls
        let p1 = s.transposed() as *const SparseMatrix;
        let p2 = s.transposed() as *const SparseMatrix;
        assert_eq!(p1, p2);
        assert_eq!(s.transposed().to_dense(), s.to_dense().transpose());
    }

    #[test]
    fn zero_width_dense_is_fine() {
        let s = SparseMatrix::from_triplets(3, 3, [(0, 1, 2.0)]);
        let d = Matrix::zeros(3, 0);
        assert_eq!(s.spmm(&d).shape(), (3, 0));
        assert_eq!(s.spmm_transpose(&d).shape(), (3, 0));
    }
}

//! Reverse-mode autodiff tape.
//!
//! Eager evaluation: each op computes its value immediately and records the
//! operands, so `backward` is a single reverse sweep. One tape is created
//! per forward pass (per subgraph in DP-SGD — Algorithm 2 needs *per-sample*
//! gradients anyway, so tapes are short-lived and allocation is amortised by
//! the small shapes involved).
//!
//! The op set is exactly what the five GNNs (Appendix G) and the IM loss
//! (Eq. 5) require; see each constructor's docs for the backward rule.
//!
//! ## Allocation reuse
//!
//! Per-sample training builds one tape per subgraph per batch. Two layers
//! keep that from hammering the allocator: every op's value matrix draws
//! its buffer from the thread-local pool in [`crate::pool`] (and returns it
//! on drop), and [`Tape::with_scratch`] hands out a per-thread recycled
//! tape whose node storage keeps its capacity across samples. Because
//! `privim_rt::par` workers are persistent, both warm up once per thread
//! and stay warm for the whole run.

use crate::matrix::Matrix;
use crate::sparse::SparseMatrix;
use std::cell::RefCell;
use std::sync::Arc;

/// Handle to a tape node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Var(usize);

#[derive(Clone, Debug)]
enum Op {
    Leaf,
    MatMul(Var, Var),
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    AddRowBroadcast(Var, Var),
    Scale(Var, f64),
    AddScalar(Var),
    Relu(Var),
    LeakyRelu(Var, f64),
    Sigmoid(Var),
    Tanh(Var),
    Exp(Var),
    Clamp01(Var),
    OneMinus(Var),
    Sum(Var),
    Mean(Var),
    ConcatCols(Var, Var),
    Spmm(usize, Var),
    GatherRows(Var, Arc<Vec<u32>>),
    ScatterAddRows(Var, Arc<Vec<u32>>),
    SegmentSoftmax(Var, Arc<Vec<u32>>),
    MulColBroadcast(Var, Var),
}

struct Node {
    op: Op,
    value: Matrix,
}

/// Gradients of one scalar output with respect to every tape node.
///
/// Gradients are materialised lazily: nodes that never receive gradient
/// mass (or whose gradient was consumed during the sweep) report zeros of
/// the right shape on demand.
pub struct Gradients {
    grads: Vec<Option<Matrix>>,
    shapes: Vec<(usize, usize)>,
}

impl Gradients {
    /// Gradient with respect to `v` (zeros if `v` did not influence the
    /// differentiated scalar). Note: gradients of *interior* nodes are
    /// consumed by the reverse sweep; only leaves retain theirs.
    pub fn wrt(&self, v: Var) -> Matrix {
        match &self.grads[v.0] {
            Some(m) => m.clone(),
            None => Matrix::zeros(self.shapes[v.0].0, self.shapes[v.0].1),
        }
    }

    /// Move the gradient out (avoids a clone when collecting param grads).
    pub fn take(&mut self, v: Var) -> Matrix {
        match self.grads[v.0].take() {
            Some(m) => m,
            None => Matrix::zeros(self.shapes[v.0].0, self.shapes[v.0].1),
        }
    }
}

/// The autodiff tape. See module docs.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    sparse: Vec<Arc<SparseMatrix>>,
}

thread_local! {
    static SCRATCH: RefCell<Tape> = RefCell::new(Tape::new());
}

impl Tape {
    /// Fresh empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Clear all recorded nodes and sparse constants, retaining the node
    /// vector's capacity. Dropped node values return their buffers to the
    /// thread-local matrix pool, so the next forward pass on this thread
    /// re-uses them instead of allocating.
    pub fn reset(&mut self) {
        self.nodes.clear();
        self.sparse.clear();
    }

    /// Run `f` on this thread's recycled scratch tape (reset first). The
    /// DP-SGD per-sample loop uses this so repeated forward/backward passes
    /// on a pool worker stop paying a tape allocation per sample. Re-entrant
    /// calls fall back to a fresh tape rather than aliasing the scratch.
    pub fn with_scratch<R>(f: impl FnOnce(&mut Tape) -> R) -> R {
        SCRATCH.with(|cell| match cell.try_borrow_mut() {
            Ok(mut tape) => {
                tape.reset();
                f(&mut tape)
            }
            Err(_) => f(&mut Tape::new()),
        })
    }

    /// Number of recorded nodes (diagnostics).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no nodes recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    fn push(&mut self, op: Op, value: Matrix) -> Var {
        self.nodes.push(Node { op, value });
        Var(self.nodes.len() - 1)
    }

    /// Register a constant / parameter matrix. Gradients flow *to* leaves
    /// but not through them.
    pub fn leaf(&mut self, value: Matrix) -> Var {
        self.push(Op::Leaf, value)
    }

    /// Register a sparse constant for use with [`Self::spmm`]. Takes an
    /// `Arc` so repeated forward passes over the same graph share one copy.
    pub fn sparse_const(&mut self, m: impl Into<Arc<SparseMatrix>>) -> usize {
        self.sparse.push(m.into());
        self.sparse.len() - 1
    }

    /// `a × b`. Backward: `dA += dC·Bᵀ`, `dB += Aᵀ·dC`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.push(Op::MatMul(a, b), v)
    }

    /// Elementwise `a + b` (same shape).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b));
        self.push(Op::Add(a, b), v)
    }

    /// Elementwise `a - b` (same shape).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).sub(self.value(b));
        self.push(Op::Sub(a, b), v)
    }

    /// Hadamard product (same shape).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).hadamard(self.value(b));
        self.push(Op::Mul(a, b), v)
    }

    /// `(n×d) + (1×d)` row-broadcast add (bias). Backward sums `d` over rows
    /// for the bias operand.
    pub fn add_row_broadcast(&mut self, a: Var, bias: Var) -> Var {
        let am = self.value(a);
        let bm = self.value(bias);
        assert_eq!(bm.rows(), 1, "bias must be a row vector");
        assert_eq!(am.cols(), bm.cols(), "bias width mismatch");
        let mut out = am.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for (j, x) in row.iter_mut().enumerate() {
                *x += bm.get(0, j);
            }
        }
        self.push(Op::AddRowBroadcast(a, bias), out)
    }

    /// `c · a` for a scalar constant `c`.
    pub fn scale(&mut self, a: Var, c: f64) -> Var {
        let v = self.value(a).scale(c);
        self.push(Op::Scale(a, c), v)
    }

    /// `a + c` elementwise for a scalar constant `c`.
    pub fn add_scalar(&mut self, a: Var, c: f64) -> Var {
        let v = self.value(a).map(|x| x + c);
        self.push(Op::AddScalar(a), v)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.max(0.0));
        self.push(Op::Relu(a), v)
    }

    /// Leaky ReLU with negative slope `alpha` (GAT/GRAT attention scores).
    pub fn leaky_relu(&mut self, a: Var, alpha: f64) -> Var {
        let v = self.value(a).map(|x| if x > 0.0 { x } else { alpha * x });
        self.push(Op::LeakyRelu(a, alpha), v)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(Op::Sigmoid(a), v)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f64::tanh);
        self.push(Op::Tanh(a), v)
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let v = self.value(a).map(f64::exp);
        self.push(Op::Exp(a), v)
    }

    /// Clamp to `[0, 1]` — the paper's probability map φ in Theorem 2.
    /// Subgradient: identity strictly inside, zero outside.
    pub fn clamp01(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| x.clamp(0.0, 1.0));
        self.push(Op::Clamp01(a), v)
    }

    /// `1 - a` elementwise (the "stays inactive" probabilities of Eq. 4).
    pub fn one_minus(&mut self, a: Var) -> Var {
        let v = self.value(a).map(|x| 1.0 - x);
        self.push(Op::OneMinus(a), v)
    }

    /// Sum of all entries → `1×1`.
    pub fn sum(&mut self, a: Var) -> Var {
        let v = Matrix::from_vec(1, 1, vec![self.value(a).sum()]);
        self.push(Op::Sum(a), v)
    }

    /// Mean of all entries → `1×1`.
    pub fn mean(&mut self, a: Var) -> Var {
        let m = self.value(a);
        let n = (m.rows() * m.cols()).max(1) as f64;
        let v = Matrix::from_vec(1, 1, vec![m.sum() / n]);
        self.push(Op::Mean(a), v)
    }

    /// Horizontal concat `[a | b]` (GraphSAGE).
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).concat_cols(self.value(b));
        self.push(Op::ConcatCols(a, b), v)
    }

    /// Sparse × dense product `S · h` where `S` is a registered sparse
    /// constant. Backward: `dH += Sᵀ · d`.
    pub fn spmm(&mut self, sparse_id: usize, h: Var) -> Var {
        let v = self.sparse[sparse_id].spmm(self.value(h));
        self.push(Op::Spmm(sparse_id, h), v)
    }

    /// Row gather: `out[i] = a[idx[i]]` (node → edge endpoint lift).
    /// Backward scatter-adds into the source rows.
    pub fn gather_rows(&mut self, a: Var, idx: Arc<Vec<u32>>) -> Var {
        let am = self.value(a);
        let mut out = Matrix::zeros(idx.len(), am.cols());
        for (i, &r) in idx.iter().enumerate() {
            out.row_mut(i).copy_from_slice(am.row(r as usize));
        }
        self.push(Op::GatherRows(a, idx), out)
    }

    /// Row scatter-add: `out[idx[i]] += a[i]` with `out` having `out_rows`
    /// rows (edge message → node aggregation). Backward gathers.
    pub fn scatter_add_rows(&mut self, a: Var, idx: Arc<Vec<u32>>, out_rows: usize) -> Var {
        let am = self.value(a);
        assert_eq!(am.rows(), idx.len(), "index length mismatch");
        let mut out = Matrix::zeros(out_rows, am.cols());
        for (i, &r) in idx.iter().enumerate() {
            let dst = out.row_mut(r as usize);
            let src = am.row(i);
            for j in 0..src.len() {
                dst[j] += src[j];
            }
        }
        self.push(Op::ScatterAddRows(a, idx), out)
    }

    /// Softmax of a column vector within segments: entries sharing
    /// `segments[i]` are normalised together (GAT normalises over each
    /// target's in-edges, GRAT over each source's out-edges — Eqs. 35/39).
    /// Numerically stabilised by per-segment max subtraction.
    pub fn segment_softmax(&mut self, scores: Var, segments: Arc<Vec<u32>>) -> Var {
        let s = self.value(scores);
        assert_eq!(s.cols(), 1, "segment_softmax expects a column vector");
        assert_eq!(s.rows(), segments.len(), "segment length mismatch");
        let nseg = segments.iter().map(|&x| x as usize + 1).max().unwrap_or(0);
        let mut seg_max = vec![f64::NEG_INFINITY; nseg];
        for (i, &g) in segments.iter().enumerate() {
            seg_max[g as usize] = seg_max[g as usize].max(s.get(i, 0));
        }
        let mut seg_sum = vec![0.0f64; nseg];
        let mut ex = vec![0.0f64; s.rows()];
        for (i, &g) in segments.iter().enumerate() {
            let e = (s.get(i, 0) - seg_max[g as usize]).exp();
            ex[i] = e;
            seg_sum[g as usize] += e;
        }
        let mut out = Matrix::zeros(s.rows(), 1);
        for (i, &g) in segments.iter().enumerate() {
            out.set(i, 0, ex[i] / seg_sum[g as usize]);
        }
        self.push(Op::SegmentSoftmax(scores, segments), out)
    }

    /// Broadcast a column vector across columns: `out[i][j] = c[i] · a[i][j]`
    /// (attention coefficient × message).
    pub fn mul_col_broadcast(&mut self, c: Var, a: Var) -> Var {
        let cm = self.value(c);
        let am = self.value(a);
        assert_eq!(cm.cols(), 1, "coefficient must be a column vector");
        assert_eq!(cm.rows(), am.rows(), "row mismatch");
        let mut out = am.clone();
        for r in 0..out.rows() {
            let cv = cm.get(r, 0);
            for x in out.row_mut(r) {
                *x *= cv;
            }
        }
        self.push(Op::MulColBroadcast(c, a), out)
    }

    /// Reverse sweep from `loss` (must be `1×1`). Returns gradients for all
    /// nodes; fetch the ones you registered as parameters.
    pub fn backward(&self, loss: Var) -> Gradients {
        let lm = self.value(loss);
        assert_eq!(lm.shape(), (1, 1), "backward needs a scalar loss");
        let shapes: Vec<(usize, usize)> = self.nodes.iter().map(|n| n.value.shape()).collect();
        let mut grads: Vec<Option<Matrix>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Matrix::from_vec(1, 1, vec![1.0]));

        // Accumulate `delta` into `grads[target]`, reusing `delta`'s
        // allocation when the slot is empty.
        fn acc(grads: &mut [Option<Matrix>], target: usize, delta: Matrix) {
            match &mut grads[target] {
                Some(g) => g.add_assign(&delta),
                slot @ None => *slot = Some(delta),
            }
        }
        fn acc_scaled(grads: &mut [Option<Matrix>], target: usize, delta: &Matrix, c: f64) {
            match &mut grads[target] {
                Some(g) => g.add_scaled_assign(delta, c),
                slot @ None => *slot = Some(delta.scale(c)),
            }
        }

        for id in (0..=loss.0).rev() {
            // Interior gradients are consumed (moved out); leaves keep
            // theirs for the caller.
            let is_leaf = matches!(self.nodes[id].op, Op::Leaf);
            let Some(d) = (if is_leaf { None } else { grads[id].take() }) else {
                continue;
            };
            match &self.nodes[id].op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let da = d.matmul(&self.value(*b).transpose());
                    let db = self.value(*a).transpose().matmul(&d);
                    acc(&mut grads, a.0, da);
                    acc(&mut grads, b.0, db);
                }
                Op::Add(a, b) => {
                    acc_scaled(&mut grads, b.0, &d, 1.0);
                    acc(&mut grads, a.0, d);
                }
                Op::Sub(a, b) => {
                    acc_scaled(&mut grads, b.0, &d, -1.0);
                    acc(&mut grads, a.0, d);
                }
                Op::Mul(a, b) => {
                    let da = d.hadamard(self.value(*b));
                    let db = d.hadamard(self.value(*a));
                    acc(&mut grads, a.0, da);
                    acc(&mut grads, b.0, db);
                }
                Op::AddRowBroadcast(a, bias) => {
                    let mut bsum = Matrix::zeros(1, d.cols());
                    for r in 0..d.rows() {
                        for j in 0..d.cols() {
                            bsum.set(0, j, bsum.get(0, j) + d.get(r, j));
                        }
                    }
                    acc(&mut grads, bias.0, bsum);
                    acc(&mut grads, a.0, d);
                }
                Op::Scale(a, c) => acc_scaled(&mut grads, a.0, &d, *c),
                Op::AddScalar(a) => acc(&mut grads, a.0, d),
                Op::Relu(a) => {
                    let da = self.value(*a).zip(&d, |x, g| if x > 0.0 { g } else { 0.0 });
                    acc(&mut grads, a.0, da);
                }
                Op::LeakyRelu(a, alpha) => {
                    let al = *alpha;
                    let da = self
                        .value(*a)
                        .zip(&d, |x, g| if x > 0.0 { g } else { al * g });
                    acc(&mut grads, a.0, da);
                }
                Op::Sigmoid(a) => {
                    let da = self.nodes[id].value.zip(&d, |y, g| g * y * (1.0 - y));
                    acc(&mut grads, a.0, da);
                }
                Op::Tanh(a) => {
                    let da = self.nodes[id].value.zip(&d, |y, g| g * (1.0 - y * y));
                    acc(&mut grads, a.0, da);
                }
                Op::Exp(a) => {
                    let da = self.nodes[id].value.hadamard(&d);
                    acc(&mut grads, a.0, da);
                }
                Op::Clamp01(a) => {
                    let da = self
                        .value(*a)
                        .zip(&d, |x, g| if x > 0.0 && x < 1.0 { g } else { 0.0 });
                    acc(&mut grads, a.0, da);
                }
                Op::OneMinus(a) => acc_scaled(&mut grads, a.0, &d, -1.0),
                Op::Sum(a) => {
                    let g = d.get(0, 0);
                    let (r, c) = self.value(*a).shape();
                    acc(&mut grads, a.0, Matrix::full(r, c, g));
                }
                Op::Mean(a) => {
                    let (r, c) = self.value(*a).shape();
                    let g = d.get(0, 0) / ((r * c).max(1) as f64);
                    acc(&mut grads, a.0, Matrix::full(r, c, g));
                }
                Op::ConcatCols(a, b) => {
                    let ac = self.value(*a).cols();
                    let mut da = Matrix::zeros(d.rows(), ac);
                    let mut db = Matrix::zeros(d.rows(), d.cols() - ac);
                    for r in 0..d.rows() {
                        da.row_mut(r).copy_from_slice(&d.row(r)[..ac]);
                        db.row_mut(r).copy_from_slice(&d.row(r)[ac..]);
                    }
                    acc(&mut grads, a.0, da);
                    acc(&mut grads, b.0, db);
                }
                Op::Spmm(sid, h) => {
                    let dh = self.sparse[*sid].spmm_transpose(&d);
                    acc(&mut grads, h.0, dh);
                }
                Op::GatherRows(a, idx) => {
                    let (r, c) = self.value(*a).shape();
                    let mut da = match grads[a.0].take() {
                        Some(m) => m,
                        None => Matrix::zeros(r, c),
                    };
                    for (i, &row) in idx.iter().enumerate() {
                        let dst = da.row_mut(row as usize);
                        let src = d.row(i);
                        for j in 0..src.len() {
                            dst[j] += src[j];
                        }
                    }
                    grads[a.0] = Some(da);
                }
                Op::ScatterAddRows(a, idx) => {
                    let (r, c) = self.value(*a).shape();
                    let mut da = Matrix::zeros(r, c);
                    for (i, &row) in idx.iter().enumerate() {
                        let src = d.row(row as usize);
                        let dst = da.row_mut(i);
                        for j in 0..src.len() {
                            dst[j] += src[j];
                        }
                    }
                    acc(&mut grads, a.0, da);
                }
                Op::SegmentSoftmax(scores, segments) => {
                    let y = &self.nodes[id].value;
                    let nseg = segments.iter().map(|&x| x as usize + 1).max().unwrap_or(0);
                    let mut seg_dot = vec![0.0f64; nseg];
                    for (i, &g) in segments.iter().enumerate() {
                        seg_dot[g as usize] += d.get(i, 0) * y.get(i, 0);
                    }
                    let mut ds = Matrix::zeros(y.rows(), 1);
                    for (i, &g) in segments.iter().enumerate() {
                        let yi = y.get(i, 0);
                        ds.set(i, 0, yi * (d.get(i, 0) - seg_dot[g as usize]));
                    }
                    acc(&mut grads, scores.0, ds);
                }
                Op::MulColBroadcast(c, a) => {
                    let cm = self.value(*c);
                    let am = self.value(*a);
                    let mut dc = Matrix::zeros(cm.rows(), 1);
                    for i in 0..am.rows() {
                        let mut s = 0.0;
                        for j in 0..am.cols() {
                            s += d.get(i, j) * am.get(i, j);
                        }
                        dc.set(i, 0, s);
                    }
                    acc(&mut grads, c.0, dc);
                    let mut da = d;
                    for i in 0..da.rows() {
                        let cv = cm.get(i, 0);
                        for x in da.row_mut(i) {
                            *x *= cv;
                        }
                    }
                    acc(&mut grads, a.0, da);
                }
            }
        }
        Gradients { grads, shapes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_backward_matches_manual() {
        // loss = sum(A×B); dA = 1·Bᵀ, dB = Aᵀ·1
        let mut t = Tape::new();
        let a = t.leaf(Matrix::from_rows(&[&[1.0, 2.0]]));
        let b = t.leaf(Matrix::from_rows(&[&[3.0], &[4.0]]));
        let c = t.matmul(a, b);
        let l = t.sum(c);
        let g = t.backward(l);
        assert_eq!(g.wrt(a).data(), &[3.0, 4.0]);
        assert_eq!(g.wrt(b).data(), &[1.0, 2.0]);
    }

    #[test]
    fn sigmoid_gradient_at_zero_is_quarter() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[0.0]]));
        let s = t.sigmoid(x);
        let l = t.sum(s);
        let g = t.backward(l);
        assert!((g.wrt(x).get(0, 0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn clamp01_blocks_gradient_outside() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[-0.5, 0.5, 1.5]]));
        let c = t.clamp01(x);
        let l = t.sum(c);
        let g = t.backward(l);
        assert_eq!(g.wrt(x).data(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn fanout_accumulates() {
        // loss = sum(x + x) → dx = 2
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[1.0]]));
        let y = t.add(x, x);
        let l = t.sum(y);
        let g = t.backward(l);
        assert_eq!(g.wrt(x).get(0, 0), 2.0);
    }

    #[test]
    fn spmm_backward_is_transpose_product() {
        let mut t = Tape::new();
        let s = SparseMatrix::from_triplets(2, 3, [(0, 1, 2.0), (1, 2, 3.0)]);
        let sid = t.sparse_const(s.clone());
        let h = t.leaf(Matrix::full(3, 1, 1.0));
        let out = t.spmm(sid, h);
        let l = t.sum(out);
        let g = t.backward(l);
        let expect = s.spmm_transpose(&Matrix::full(2, 1, 1.0));
        assert_eq!(g.wrt(h), expect);
    }

    #[test]
    fn gather_scatter_roundtrip_gradients() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]));
        let idx = Arc::new(vec![0u32, 0, 2]);
        let gth = t.gather_rows(x, idx.clone());
        let l = t.sum(gth);
        let g = t.backward(l);
        // row 0 gathered twice, row 1 never, row 2 once
        assert_eq!(g.wrt(x).data(), &[2.0, 0.0, 1.0]);

        let mut t2 = Tape::new();
        let e = t2.leaf(Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]));
        let sct = t2.scatter_add_rows(e, Arc::new(vec![1u32, 1, 0]), 2);
        assert_eq!(t2.value(sct).data(), &[3.0, 3.0]);
        let l2 = t2.sum(sct);
        let g2 = t2.backward(l2);
        assert_eq!(g2.wrt(e).data(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn segment_softmax_normalises_within_segments() {
        let mut t = Tape::new();
        let s = t.leaf(Matrix::col_vector(&[1.0, 1.0, 5.0]));
        let seg = Arc::new(vec![0u32, 0, 1]);
        let y = t.segment_softmax(s, seg);
        let v = t.value(y);
        assert!((v.get(0, 0) - 0.5).abs() < 1e-12);
        assert!((v.get(1, 0) - 0.5).abs() < 1e-12);
        assert!((v.get(2, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn segment_softmax_gradient_sums_to_zero_per_segment() {
        // Softmax gradients within a segment sum to zero when upstream
        // gradient is constant — a standard sanity identity.
        let mut t = Tape::new();
        let s = t.leaf(Matrix::col_vector(&[0.3, -0.7, 1.2]));
        let seg = Arc::new(vec![0u32, 0, 0]);
        let y = t.segment_softmax(s, seg);
        let l = t.sum(y);
        let g = t.backward(l);
        let total: f64 = g.wrt(s).data().iter().sum();
        assert!(total.abs() < 1e-12, "sum {total}");
    }

    #[test]
    fn scalar_chain() {
        // loss = mean(2x + 3)
        let mut t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[1.0, 5.0]]));
        let y = t.scale(x, 2.0);
        let z = t.add_scalar(y, 3.0);
        let l = t.mean(z);
        assert_eq!(t.value(l).get(0, 0), (5.0 + 13.0) / 2.0);
        let g = t.backward(l);
        assert_eq!(g.wrt(x).data(), &[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_on_non_scalar_panics() {
        let mut t = Tape::new();
        let x = t.leaf(Matrix::zeros(2, 2));
        t.backward(x);
    }

    #[test]
    fn scratch_tape_is_reset_between_uses() {
        let n1 = Tape::with_scratch(|t| {
            let x = t.leaf(Matrix::from_rows(&[&[1.0, 2.0]]));
            let y = t.relu(x);
            let l = t.sum(y);
            let g = t.backward(l);
            assert_eq!(g.wrt(x).data(), &[1.0, 1.0]);
            t.len()
        });
        let n2 = Tape::with_scratch(|t| {
            assert!(t.is_empty(), "scratch must be reset");
            let x = t.leaf(Matrix::from_rows(&[&[3.0]]));
            let l = t.sum(x);
            let g = t.backward(l);
            assert_eq!(g.wrt(x).get(0, 0), 1.0);
            t.len()
        });
        assert_eq!(n1, 3);
        assert_eq!(n2, 2);
        // re-entrant use falls back to a fresh tape instead of panicking
        Tape::with_scratch(|outer| {
            let x = outer.leaf(Matrix::from_rows(&[&[1.0]]));
            Tape::with_scratch(|inner| {
                assert!(inner.is_empty());
                let y = inner.leaf(Matrix::from_rows(&[&[2.0]]));
                assert_eq!(inner.value(y).get(0, 0), 2.0);
            });
            assert_eq!(outer.value(x).get(0, 0), 1.0);
        });
    }

    #[test]
    fn one_minus_and_mul_compose() {
        // Π(1 - p) loss core: d/dp [ (1-p0)(1-p1) ]
        let mut t = Tape::new();
        let p = t.leaf(Matrix::col_vector(&[0.2, 0.4]));
        let q = t.one_minus(p);
        // product of the two entries via gather + mul
        let i0 = t.gather_rows(q, Arc::new(vec![0u32]));
        let i1 = t.gather_rows(q, Arc::new(vec![1u32]));
        let prod = t.mul(i0, i1);
        let l = t.sum(prod);
        let g = t.backward(l);
        // d/dp0 = -(1-p1) = -0.6; d/dp1 = -(1-p0) = -0.8
        assert!((g.wrt(p).get(0, 0) + 0.6).abs() < 1e-12);
        assert!((g.wrt(p).get(1, 0) + 0.8).abs() < 1e-12);
    }
}

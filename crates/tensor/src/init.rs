//! Weight initialisation schemes.

use crate::matrix::Matrix;
use privim_rt::Rng;

/// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
/// The default for the GNN weight matrices (matches PyG's reset defaults for
/// GCN/GAT-style layers).
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
    let a = (6.0 / (fan_in + fan_out) as f64).sqrt();
    let mut m = Matrix::zeros(fan_in, fan_out);
    for x in m.data_mut() {
        *x = rng.gen_range(-a..=a);
    }
    m
}

/// Kaiming/He normal: `N(0, sqrt(2 / fan_in))` — for ReLU MLPs (GIN).
pub fn kaiming_normal(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Matrix {
    let std = (2.0 / fan_in as f64).sqrt();
    let mut m = Matrix::zeros(fan_in, fan_out);
    for x in m.data_mut() {
        *x = sample_standard_normal(rng) * std;
    }
    m
}

/// Standard normal via Box–Muller (avoids a rand_distr dependency).
pub fn sample_standard_normal(rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// Matrix of iid `N(0, std²)` entries.
pub fn gaussian_matrix(rows: usize, cols: usize, std: f64, rng: &mut impl Rng) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    for x in m.data_mut() {
        *x = sample_standard_normal(rng) * std;
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use privim_rt::ChaCha8Rng;
    use privim_rt::SeedableRng;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let m = xavier_uniform(16, 32, &mut rng);
        let a = (6.0 / 48.0f64).sqrt();
        assert!(m.max_abs() <= a);
        assert!(m.max_abs() > 0.0);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gaussian_matrix_scales_std() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let m = gaussian_matrix(100, 100, 5.0, &mut rng);
        let var = m.data().iter().map(|x| x * x).sum::<f64>() / 10_000.0;
        assert!((var.sqrt() - 5.0).abs() < 0.2, "std {}", var.sqrt());
    }

    #[test]
    fn kaiming_scale_shrinks_with_fan_in() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let wide = kaiming_normal(1024, 8, &mut rng);
        let narrow = kaiming_normal(4, 8, &mut rng);
        let rms = |m: &Matrix| {
            (m.data().iter().map(|x| x * x).sum::<f64>() / m.data().len() as f64).sqrt()
        };
        assert!(rms(&wide) < rms(&narrow));
    }
}

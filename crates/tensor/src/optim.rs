//! Optimisers and gradient clipping.
//!
//! DP-SGD (Algorithm 2) clips each *per-sample* gradient to a global `l2`
//! bound `C` across all parameter matrices, sums, adds noise, then applies
//! a plain SGD step with the averaged private gradient. [`GradClip`]
//! implements the clip; [`Sgd`]/[`Adam`] implement the update.

use crate::matrix::Matrix;

/// Global `l2` clipping across a parameter-shaped gradient list
/// (Algorithm 2, line 6).
pub struct GradClip;

impl GradClip {
    /// `l2` norm of the flattened gradient list. Per-matrix sums of
    /// squares come from the [`crate::simd`] 4-lane reduction (no
    /// square-then-sqrt round trip per matrix), combined in parameter
    /// order — deterministic across backends and thread counts.
    pub fn global_norm(grads: &[Matrix]) -> f64 {
        grads
            .iter()
            .map(|g| crate::simd::sumsq(g.data()))
            .sum::<f64>()
            .sqrt()
    }

    /// Scale `grads` in place by `min(1, c / ‖g‖₂)`. Returns the pre-clip
    /// norm (useful for diagnostics / adaptive clipping studies).
    pub fn clip(grads: &mut [Matrix], c: f64) -> f64 {
        assert!(c > 0.0, "clip bound must be positive");
        let norm = Self::global_norm(grads);
        if norm > c {
            let s = c / norm;
            for g in grads.iter_mut() {
                crate::simd::scale(g.data_mut(), s);
            }
        }
        norm
    }
}

/// Parameter-update strategy.
pub trait Optimizer {
    /// Apply one update step: `params[i] -= direction_i(grads[i])`.
    fn step(&mut self, params: &mut [Matrix], grads: &[Matrix]);

    /// Current learning rate (diagnostics).
    fn learning_rate(&self) -> f64;
}

/// Plain SGD, the optimiser Algorithm 2 uses (line 9).
pub struct Sgd {
    lr: f64,
}

impl Sgd {
    /// SGD with fixed learning rate.
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0);
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [Matrix], grads: &[Matrix]) {
        assert_eq!(params.len(), grads.len());
        for (p, g) in params.iter_mut().zip(grads) {
            p.add_scaled_assign(g, -self.lr);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }
}

/// Adam (Kingma & Ba). Offered for the non-private ablations; the DP
/// pipelines stick with SGD so the sensitivity analysis applies verbatim.
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Adam with standard defaults `β₁=0.9, β₂=0.999, ε=1e-8`.
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0);
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [Matrix], grads: &[Matrix]) {
        assert_eq!(params.len(), grads.len());
        if self.m.is_empty() {
            self.m = params
                .iter()
                .map(|p| Matrix::zeros(p.rows(), p.cols()))
                .collect();
            self.v = self.m.clone();
        }
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = &grads[i];
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for ((mj, vj), (&gj, pj)) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut())
                .zip(g.data().iter().zip(params[i].data_mut()))
            {
                *mj = self.beta1 * *mj + (1.0 - self.beta1) * gj;
                *vj = self.beta2 * *vj + (1.0 - self.beta2) * gj * gj;
                let mhat = *mj / b1t;
                let vhat = *vj / b2t;
                *pj -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_norm_over_multiple_matrices() {
        let grads = vec![Matrix::from_rows(&[&[3.0]]), Matrix::from_rows(&[&[4.0]])];
        assert!((GradClip::global_norm(&grads) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn clip_noop_when_under_bound() {
        let mut grads = vec![Matrix::from_rows(&[&[0.3, 0.4]])];
        let pre = GradClip::clip(&mut grads, 1.0);
        assert!((pre - 0.5).abs() < 1e-12);
        assert_eq!(grads[0].data(), &[0.3, 0.4]);
    }

    #[test]
    fn clip_scales_to_exact_bound() {
        let mut grads = vec![Matrix::from_rows(&[&[3.0]]), Matrix::from_rows(&[&[4.0]])];
        GradClip::clip(&mut grads, 1.0);
        let post = GradClip::global_norm(&grads);
        assert!((post - 1.0).abs() < 1e-12, "post-clip norm {post}");
        // direction preserved
        assert!((grads[0].get(0, 0) / grads[1].get(0, 0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn sgd_descends_quadratic() {
        // minimise f(w) = (w - 3)^2, grad = 2(w-3)
        let mut w = vec![Matrix::from_rows(&[&[0.0]])];
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            let g = vec![w[0].map(|x| 2.0 * (x - 3.0))];
            opt.step(&mut w, &g);
        }
        assert!((w[0].get(0, 0) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn adam_descends_quadratic() {
        let mut w = vec![Matrix::from_rows(&[&[0.0]])];
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let g = vec![w[0].map(|x| 2.0 * (x - 3.0))];
            opt.step(&mut w, &g);
        }
        assert!((w[0].get(0, 0) - 3.0).abs() < 1e-3, "w={}", w[0].get(0, 0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_clip_bound_panics() {
        let mut grads = vec![Matrix::zeros(1, 1)];
        GradClip::clip(&mut grads, 0.0);
    }
}

//! SIMD backend for the dense inner loops, under a cross-backend
//! determinism contract.
//!
//! Every kernel here exists in (up to) four implementations — scalar,
//! SSE2, AVX2 on x86-64, NEON on AArch64 — selected at runtime behind one
//! [`Backend`] dispatch (`PRIVIM_SIMD={auto,avx2,sse2,neon,scalar}`, or
//! [`set_backend`] for in-process tests). The contract that makes the
//! selection *invisible to results*:
//!
//! * **Elementwise kernels** ([`axpy`], [`add_assign`], [`scale`]) compute
//!   each output element from exactly the operations the scalar loop
//!   performs (`y[i] + a * x[i]` — separate IEEE-754 multiply and add,
//!   never a fused multiply-add), so lanes only change *which elements go
//!   together through the ALU*, not any element's value.
//! * **Reductions** ([`sum`], [`dot`], [`sumsq`]) use **fixed-width
//!   virtual lane accumulators**: 4 × `f64` lanes where lane `j`
//!   accumulates elements `j, j+4, j+8, …` in ascending order, a fixed
//!   final combine `(l0 + l2) + (l1 + l3)`, then the `len % 4` tail added
//!   sequentially. The scalar backend materialises the same four
//!   accumulators; SSE2/NEON split them across two 2-lane registers
//!   (`[l0,l1]`,`[l2,l3]`) whose vertical add + horizontal fold produces
//!   the identical combine; AVX2 holds all four in one register and
//!   extracts low/high halves the same way.
//! * **Integer kernels** ([`idot`]) accumulate exactly (i8×i8 products in
//!   i32 never overflow for the dimensions we serve), so any summation
//!   order gives the same bits; SIMD lane layout is unconstrained.
//!
//! Together: results are bit-identical across `PRIVIM_SIMD` settings,
//! thread counts and architectures — pinned by `tests/determinism.rs`.
//!
//! All loads are unaligned-tolerant (`loadu`); the allocation side
//! ([`crate::pool`]) hands out 64-byte-aligned buffers so the unaligned
//! opcodes never actually cross into the slow split-load path.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Requested backend (what the user asked for).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Choice {
    /// Pick the widest backend the CPU supports.
    Auto,
    /// Force the scalar (4-virtual-lane) reference implementation.
    Scalar,
    /// Force SSE2 (falls back to scalar if undetected).
    Sse2,
    /// Force AVX2 (falls back to scalar if undetected).
    Avx2,
    /// Force NEON (falls back to scalar off AArch64).
    Neon,
}

/// Resolved backend (what will actually run). Every variant is only ever
/// returned when the corresponding CPU feature was runtime-detected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Portable 4-virtual-lane scalar kernels.
    Scalar,
    /// 2×f64 SSE2 registers (two per virtual accumulator group).
    Sse2,
    /// 4×f64 AVX2 registers.
    Avx2,
    /// 2×f64 NEON registers.
    Neon,
}

impl Backend {
    /// Stable lowercase name (bench metadata, logs).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Sse2 => "sse2",
            Backend::Avx2 => "avx2",
            Backend::Neon => "neon",
        }
    }
}

/// In-process override set by [`set_backend`]; 0 = none (use the env).
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// `PRIVIM_SIMD` parsed once per process (the env cannot change under a
/// running kernel without racing it; tests use [`set_backend`] instead).
static ENV_CHOICE: OnceLock<Choice> = OnceLock::new();

fn encode(c: Choice) -> u8 {
    match c {
        Choice::Auto => 1,
        Choice::Scalar => 2,
        Choice::Sse2 => 3,
        Choice::Avx2 => 4,
        Choice::Neon => 5,
    }
}

/// Override the backend for this process (tests; `None` restores the
/// `PRIVIM_SIMD` env resolution). Takes effect on the next kernel call.
pub fn set_backend(choice: Option<Choice>) {
    OVERRIDE.store(choice.map(encode).unwrap_or(0), Ordering::SeqCst);
}

/// Parse a `PRIVIM_SIMD` value. Unknown strings resolve to `Auto`: the
/// contract makes every backend bit-identical, so a typo can only cost
/// speed, never correctness — and `Auto` is the fast safe default.
fn parse_choice(s: &str) -> Choice {
    match s.to_ascii_lowercase().as_str() {
        "scalar" => Choice::Scalar,
        "sse2" => Choice::Sse2,
        "avx2" => Choice::Avx2,
        "neon" => Choice::Neon,
        _ => Choice::Auto,
    }
}

fn requested() -> Choice {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => Choice::Auto,
        2 => Choice::Scalar,
        3 => Choice::Sse2,
        4 => Choice::Avx2,
        5 => Choice::Neon,
        _ => *ENV_CHOICE.get_or_init(|| {
            std::env::var("PRIVIM_SIMD")
                .map(|v| parse_choice(&v))
                .unwrap_or(Choice::Auto)
        }),
    }
}

/// Resolve the requested backend against what the CPU actually supports.
/// A request the hardware cannot honour degrades to `Scalar` — results
/// are identical either way; only throughput differs.
pub fn active() -> Backend {
    let req = requested();
    #[cfg(target_arch = "x86_64")]
    {
        return match req {
            Choice::Scalar | Choice::Neon => Backend::Scalar,
            Choice::Avx2 => {
                if is_x86_feature_detected!("avx2") {
                    Backend::Avx2
                } else {
                    Backend::Scalar
                }
            }
            Choice::Sse2 => {
                if is_x86_feature_detected!("sse2") {
                    Backend::Sse2
                } else {
                    Backend::Scalar
                }
            }
            Choice::Auto => {
                if is_x86_feature_detected!("avx2") {
                    Backend::Avx2
                } else if is_x86_feature_detected!("sse2") {
                    Backend::Sse2
                } else {
                    Backend::Scalar
                }
            }
        };
    }
    #[cfg(target_arch = "aarch64")]
    {
        return match req {
            Choice::Scalar | Choice::Sse2 | Choice::Avx2 => Backend::Scalar,
            Choice::Neon | Choice::Auto => {
                if std::arch::is_aarch64_feature_detected!("neon") {
                    Backend::Neon
                } else {
                    Backend::Scalar
                }
            }
        };
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        let _ = req;
        Backend::Scalar
    }
}

/// Detected-feature summary for bench metadata (independent of the
/// selected backend), e.g. `"avx2+sse2"` or `"none"`.
pub fn detected_features() -> String {
    let mut feats: Vec<&str> = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") {
            feats.push("avx2");
        }
        if is_x86_feature_detected!("sse2") {
            feats.push("sse2");
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            feats.push("neon");
        }
    }
    if feats.is_empty() {
        "none".to_string()
    } else {
        feats.join("+")
    }
}

// ---------------------------------------------------------------------
// axpy: y[i] += a * x[i]  (elementwise — trivially backend-invariant)
// ---------------------------------------------------------------------

/// `y[i] += a * x[i]`. The matmul/SpMM micro-kernel inner loop.
pub fn axpy(y: &mut [f64], a: f64, x: &[f64]) {
    debug_assert_eq!(y.len(), x.len());
    #[cfg(target_arch = "x86_64")]
    {
        match active() {
            // privim-lint: allow(unsafe, reason = "dispatch guard re-checks is_x86_feature_detected! on this exact path, so the target_feature contract holds; slices are equal-length per the debug_assert and the kernels index strictly below len")
            Backend::Avx2 if is_x86_feature_detected!("avx2") => return unsafe { axpy_avx2(y, a, x) },
            // privim-lint: allow(unsafe, reason = "dispatch guard re-checks is_x86_feature_detected! on this exact path, so the target_feature contract holds; slices are equal-length per the debug_assert and the kernels index strictly below len")
            Backend::Sse2 if is_x86_feature_detected!("sse2") => return unsafe { axpy_sse2(y, a, x) },
            _ => {}
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if active() == Backend::Neon && std::arch::is_aarch64_feature_detected!("neon") {
            // privim-lint: allow(unsafe, reason = "dispatch guard re-checks is_aarch64_feature_detected! on this exact path, so the target_feature contract holds; slices are equal-length per the debug_assert and the kernels index strictly below len")
            return unsafe { axpy_neon(y, a, x) };
        }
    }
    axpy_scalar(y, a, x)
}

fn axpy_scalar(y: &mut [f64], a: f64, x: &[f64]) {
    for (o, &v) in y.iter_mut().zip(x) {
        *o += a * v;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// privim-lint: allow(unsafe, reason = "target_feature fn: callers must (and per unsafe-audit, do) runtime-detect avx2; all pointer arithmetic stays below the slice lengths asserted equal by every caller")
unsafe fn axpy_avx2(y: &mut [f64], a: f64, x: &[f64]) {
    use std::arch::x86_64::*;
    let n = y.len().min(x.len());
    let n4 = n & !3;
    let av = _mm256_set1_pd(a);
    let yp = y.as_mut_ptr();
    let xp = x.as_ptr();
    let mut i = 0;
    while i < n4 {
        let yv = _mm256_loadu_pd(yp.add(i));
        let xv = _mm256_loadu_pd(xp.add(i));
        // mul then add (no FMA): same two roundings as the scalar loop
        _mm256_storeu_pd(yp.add(i), _mm256_add_pd(yv, _mm256_mul_pd(av, xv)));
        i += 4;
    }
    for j in n4..n {
        y[j] += a * x[j];
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
// privim-lint: allow(unsafe, reason = "target_feature fn: callers must (and per unsafe-audit, do) runtime-detect sse2; all pointer arithmetic stays below the slice lengths asserted equal by every caller")
unsafe fn axpy_sse2(y: &mut [f64], a: f64, x: &[f64]) {
    use std::arch::x86_64::*;
    let n = y.len().min(x.len());
    let n2 = n & !1;
    let av = _mm_set1_pd(a);
    let yp = y.as_mut_ptr();
    let xp = x.as_ptr();
    let mut i = 0;
    while i < n2 {
        let yv = _mm_loadu_pd(yp.add(i));
        let xv = _mm_loadu_pd(xp.add(i));
        _mm_storeu_pd(yp.add(i), _mm_add_pd(yv, _mm_mul_pd(av, xv)));
        i += 2;
    }
    for j in n2..n {
        y[j] += a * x[j];
    }
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
// privim-lint: allow(unsafe, reason = "target_feature fn: callers must (and per unsafe-audit, do) runtime-detect neon; all pointer arithmetic stays below the slice lengths asserted equal by every caller")
unsafe fn axpy_neon(y: &mut [f64], a: f64, x: &[f64]) {
    use std::arch::aarch64::*;
    let n = y.len().min(x.len());
    let n2 = n & !1;
    let av = vdupq_n_f64(a);
    let yp = y.as_mut_ptr();
    let xp = x.as_ptr();
    let mut i = 0;
    while i < n2 {
        let yv = vld1q_f64(yp.add(i));
        let xv = vld1q_f64(xp.add(i));
        // vmulq + vaddq, not vfmaq: keep the scalar's two-rounding result
        vst1q_f64(yp.add(i), vaddq_f64(yv, vmulq_f64(av, xv)));
        i += 2;
    }
    for j in n2..n {
        y[j] += a * x[j];
    }
}

// ---------------------------------------------------------------------
// add_assign: y[i] += x[i]
// ---------------------------------------------------------------------

/// `y[i] += x[i]` (gradient summation, noise addition).
pub fn add_assign(y: &mut [f64], x: &[f64]) {
    debug_assert_eq!(y.len(), x.len());
    #[cfg(target_arch = "x86_64")]
    {
        match active() {
            // privim-lint: allow(unsafe, reason = "dispatch guard re-checks is_x86_feature_detected! on this exact path; kernels never index past the shorter slice")
            Backend::Avx2 if is_x86_feature_detected!("avx2") => return unsafe { add_assign_avx2(y, x) },
            // privim-lint: allow(unsafe, reason = "dispatch guard re-checks is_x86_feature_detected! on this exact path; kernels never index past the shorter slice")
            Backend::Sse2 if is_x86_feature_detected!("sse2") => return unsafe { add_assign_sse2(y, x) },
            _ => {}
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if active() == Backend::Neon && std::arch::is_aarch64_feature_detected!("neon") {
            // privim-lint: allow(unsafe, reason = "dispatch guard re-checks is_aarch64_feature_detected! on this exact path; kernels never index past the shorter slice")
            return unsafe { add_assign_neon(y, x) };
        }
    }
    add_assign_scalar(y, x)
}

fn add_assign_scalar(y: &mut [f64], x: &[f64]) {
    for (o, &v) in y.iter_mut().zip(x) {
        *o += v;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// privim-lint: allow(unsafe, reason = "target_feature fn: callers runtime-detect avx2 per unsafe-audit; indices stay below min(len)")
unsafe fn add_assign_avx2(y: &mut [f64], x: &[f64]) {
    use std::arch::x86_64::*;
    let n = y.len().min(x.len());
    let n4 = n & !3;
    let yp = y.as_mut_ptr();
    let xp = x.as_ptr();
    let mut i = 0;
    while i < n4 {
        _mm256_storeu_pd(
            yp.add(i),
            _mm256_add_pd(_mm256_loadu_pd(yp.add(i)), _mm256_loadu_pd(xp.add(i))),
        );
        i += 4;
    }
    for j in n4..n {
        y[j] += x[j];
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
// privim-lint: allow(unsafe, reason = "target_feature fn: callers runtime-detect sse2 per unsafe-audit; indices stay below min(len)")
unsafe fn add_assign_sse2(y: &mut [f64], x: &[f64]) {
    use std::arch::x86_64::*;
    let n = y.len().min(x.len());
    let n2 = n & !1;
    let yp = y.as_mut_ptr();
    let xp = x.as_ptr();
    let mut i = 0;
    while i < n2 {
        _mm_storeu_pd(
            yp.add(i),
            _mm_add_pd(_mm_loadu_pd(yp.add(i)), _mm_loadu_pd(xp.add(i))),
        );
        i += 2;
    }
    for j in n2..n {
        y[j] += x[j];
    }
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
// privim-lint: allow(unsafe, reason = "target_feature fn: callers runtime-detect neon per unsafe-audit; indices stay below min(len)")
unsafe fn add_assign_neon(y: &mut [f64], x: &[f64]) {
    use std::arch::aarch64::*;
    let n = y.len().min(x.len());
    let n2 = n & !1;
    let yp = y.as_mut_ptr();
    let xp = x.as_ptr();
    let mut i = 0;
    while i < n2 {
        vst1q_f64(yp.add(i), vaddq_f64(vld1q_f64(yp.add(i)), vld1q_f64(xp.add(i))));
        i += 2;
    }
    for j in n2..n {
        y[j] += x[j];
    }
}

// ---------------------------------------------------------------------
// scale: y[i] *= a
// ---------------------------------------------------------------------

/// `y[i] *= a` (gradient clipping, weight decay).
pub fn scale(y: &mut [f64], a: f64) {
    #[cfg(target_arch = "x86_64")]
    {
        match active() {
            // privim-lint: allow(unsafe, reason = "dispatch guard re-checks is_x86_feature_detected! on this exact path; kernel indexes strictly below y.len()")
            Backend::Avx2 if is_x86_feature_detected!("avx2") => return unsafe { scale_avx2(y, a) },
            // privim-lint: allow(unsafe, reason = "dispatch guard re-checks is_x86_feature_detected! on this exact path; kernel indexes strictly below y.len()")
            Backend::Sse2 if is_x86_feature_detected!("sse2") => return unsafe { scale_sse2(y, a) },
            _ => {}
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if active() == Backend::Neon && std::arch::is_aarch64_feature_detected!("neon") {
            // privim-lint: allow(unsafe, reason = "dispatch guard re-checks is_aarch64_feature_detected! on this exact path; kernel indexes strictly below y.len()")
            return unsafe { scale_neon(y, a) };
        }
    }
    scale_scalar(y, a)
}

fn scale_scalar(y: &mut [f64], a: f64) {
    for o in y.iter_mut() {
        *o *= a;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// privim-lint: allow(unsafe, reason = "target_feature fn: callers runtime-detect avx2 per unsafe-audit; indices stay below y.len()")
unsafe fn scale_avx2(y: &mut [f64], a: f64) {
    use std::arch::x86_64::*;
    let n = y.len();
    let n4 = n & !3;
    let av = _mm256_set1_pd(a);
    let yp = y.as_mut_ptr();
    let mut i = 0;
    while i < n4 {
        _mm256_storeu_pd(yp.add(i), _mm256_mul_pd(_mm256_loadu_pd(yp.add(i)), av));
        i += 4;
    }
    for j in n4..n {
        y[j] *= a;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
// privim-lint: allow(unsafe, reason = "target_feature fn: callers runtime-detect sse2 per unsafe-audit; indices stay below y.len()")
unsafe fn scale_sse2(y: &mut [f64], a: f64) {
    use std::arch::x86_64::*;
    let n = y.len();
    let n2 = n & !1;
    let av = _mm_set1_pd(a);
    let yp = y.as_mut_ptr();
    let mut i = 0;
    while i < n2 {
        _mm_storeu_pd(yp.add(i), _mm_mul_pd(_mm_loadu_pd(yp.add(i)), av));
        i += 2;
    }
    for j in n2..n {
        y[j] *= a;
    }
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
// privim-lint: allow(unsafe, reason = "target_feature fn: callers runtime-detect neon per unsafe-audit; indices stay below y.len()")
unsafe fn scale_neon(y: &mut [f64], a: f64) {
    use std::arch::aarch64::*;
    let n = y.len();
    let n2 = n & !1;
    let av = vdupq_n_f64(a);
    let yp = y.as_mut_ptr();
    let mut i = 0;
    while i < n2 {
        vst1q_f64(yp.add(i), vmulq_f64(vld1q_f64(yp.add(i)), av));
        i += 2;
    }
    for j in n2..n {
        y[j] *= a;
    }
}

// ---------------------------------------------------------------------
// Reductions: 4-virtual-lane accumulators, fixed combine (l0+l2)+(l1+l3)
// ---------------------------------------------------------------------

/// Sum of all elements under the 4-lane virtual accumulator contract.
pub fn sum(a: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    {
        match active() {
            // privim-lint: allow(unsafe, reason = "dispatch guard re-checks is_x86_feature_detected! on this exact path; kernel indexes strictly below a.len()")
            Backend::Avx2 if is_x86_feature_detected!("avx2") => return unsafe { sum_avx2(a) },
            // privim-lint: allow(unsafe, reason = "dispatch guard re-checks is_x86_feature_detected! on this exact path; kernel indexes strictly below a.len()")
            Backend::Sse2 if is_x86_feature_detected!("sse2") => return unsafe { sum_sse2(a) },
            _ => {}
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if active() == Backend::Neon && std::arch::is_aarch64_feature_detected!("neon") {
            // privim-lint: allow(unsafe, reason = "dispatch guard re-checks is_aarch64_feature_detected! on this exact path; kernel indexes strictly below a.len()")
            return unsafe { sum_neon(a) };
        }
    }
    sum_scalar(a)
}

/// The reference 4-lane reduction every SIMD backend must reproduce.
fn sum_scalar(a: &[f64]) -> f64 {
    let n4 = a.len() & !3;
    let mut l = [0.0f64; 4];
    let mut i = 0;
    while i < n4 {
        l[0] += a[i];
        l[1] += a[i + 1];
        l[2] += a[i + 2];
        l[3] += a[i + 3];
        i += 4;
    }
    let mut t = (l[0] + l[2]) + (l[1] + l[3]);
    for &x in &a[n4..] {
        t += x;
    }
    t
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// privim-lint: allow(unsafe, reason = "target_feature fn: callers runtime-detect avx2 per unsafe-audit; indices stay below a.len()")
unsafe fn sum_avx2(a: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    let n4 = a.len() & !3;
    let mut acc = _mm256_setzero_pd();
    let p = a.as_ptr();
    let mut i = 0;
    while i < n4 {
        acc = _mm256_add_pd(acc, _mm256_loadu_pd(p.add(i)));
        i += 4;
    }
    let lo = _mm256_castpd256_pd128(acc); // [l0, l1]
    let hi = _mm256_extractf128_pd::<1>(acc); // [l2, l3]
    let v = _mm_add_pd(lo, hi); // [l0+l2, l1+l3]
    let mut t = _mm_cvtsd_f64(v) + _mm_cvtsd_f64(_mm_unpackhi_pd(v, v));
    for &x in &a[n4..] {
        t += x;
    }
    t
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
// privim-lint: allow(unsafe, reason = "target_feature fn: callers runtime-detect sse2 per unsafe-audit; indices stay below a.len()")
unsafe fn sum_sse2(a: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    let n4 = a.len() & !3;
    let mut a01 = _mm_setzero_pd(); // lanes 0,1
    let mut a23 = _mm_setzero_pd(); // lanes 2,3
    let p = a.as_ptr();
    let mut i = 0;
    while i < n4 {
        a01 = _mm_add_pd(a01, _mm_loadu_pd(p.add(i)));
        a23 = _mm_add_pd(a23, _mm_loadu_pd(p.add(i + 2)));
        i += 4;
    }
    let v = _mm_add_pd(a01, a23); // [l0+l2, l1+l3]
    let mut t = _mm_cvtsd_f64(v) + _mm_cvtsd_f64(_mm_unpackhi_pd(v, v));
    for &x in &a[n4..] {
        t += x;
    }
    t
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
// privim-lint: allow(unsafe, reason = "target_feature fn: callers runtime-detect neon per unsafe-audit; indices stay below a.len()")
unsafe fn sum_neon(a: &[f64]) -> f64 {
    use std::arch::aarch64::*;
    let n4 = a.len() & !3;
    let mut a01 = vdupq_n_f64(0.0);
    let mut a23 = vdupq_n_f64(0.0);
    let p = a.as_ptr();
    let mut i = 0;
    while i < n4 {
        a01 = vaddq_f64(a01, vld1q_f64(p.add(i)));
        a23 = vaddq_f64(a23, vld1q_f64(p.add(i + 2)));
        i += 4;
    }
    let v = vaddq_f64(a01, a23);
    let mut t = vgetq_lane_f64::<0>(v) + vgetq_lane_f64::<1>(v);
    for &x in &a[n4..] {
        t += x;
    }
    t
}

/// Dot product `Σ a[i]·b[i]` under the 4-lane contract.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    {
        match active() {
            // privim-lint: allow(unsafe, reason = "dispatch guard re-checks is_x86_feature_detected! on this exact path; kernels never index past the shorter slice")
            Backend::Avx2 if is_x86_feature_detected!("avx2") => return unsafe { dot_avx2(a, b) },
            // privim-lint: allow(unsafe, reason = "dispatch guard re-checks is_x86_feature_detected! on this exact path; kernels never index past the shorter slice")
            Backend::Sse2 if is_x86_feature_detected!("sse2") => return unsafe { dot_sse2(a, b) },
            _ => {}
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if active() == Backend::Neon && std::arch::is_aarch64_feature_detected!("neon") {
            // privim-lint: allow(unsafe, reason = "dispatch guard re-checks is_aarch64_feature_detected! on this exact path; kernels never index past the shorter slice")
            return unsafe { dot_neon(a, b) };
        }
    }
    dot_scalar(a, b)
}

fn dot_scalar(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let n4 = n & !3;
    let mut l = [0.0f64; 4];
    let mut i = 0;
    while i < n4 {
        l[0] += a[i] * b[i];
        l[1] += a[i + 1] * b[i + 1];
        l[2] += a[i + 2] * b[i + 2];
        l[3] += a[i + 3] * b[i + 3];
        i += 4;
    }
    let mut t = (l[0] + l[2]) + (l[1] + l[3]);
    for j in n4..n {
        t += a[j] * b[j];
    }
    t
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// privim-lint: allow(unsafe, reason = "target_feature fn: callers runtime-detect avx2 per unsafe-audit; indices stay below min(len)")
unsafe fn dot_avx2(a: &[f64], b: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    let n = a.len().min(b.len());
    let n4 = n & !3;
    let mut acc = _mm256_setzero_pd();
    let pa = a.as_ptr();
    let pb = b.as_ptr();
    let mut i = 0;
    while i < n4 {
        // mul then add (no FMA) to match the scalar lanes bit-for-bit
        acc = _mm256_add_pd(acc, _mm256_mul_pd(_mm256_loadu_pd(pa.add(i)), _mm256_loadu_pd(pb.add(i))));
        i += 4;
    }
    let lo = _mm256_castpd256_pd128(acc);
    let hi = _mm256_extractf128_pd::<1>(acc);
    let v = _mm_add_pd(lo, hi);
    let mut t = _mm_cvtsd_f64(v) + _mm_cvtsd_f64(_mm_unpackhi_pd(v, v));
    for j in n4..n {
        t += a[j] * b[j];
    }
    t
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
// privim-lint: allow(unsafe, reason = "target_feature fn: callers runtime-detect sse2 per unsafe-audit; indices stay below min(len)")
unsafe fn dot_sse2(a: &[f64], b: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    let n = a.len().min(b.len());
    let n4 = n & !3;
    let mut a01 = _mm_setzero_pd();
    let mut a23 = _mm_setzero_pd();
    let pa = a.as_ptr();
    let pb = b.as_ptr();
    let mut i = 0;
    while i < n4 {
        a01 = _mm_add_pd(a01, _mm_mul_pd(_mm_loadu_pd(pa.add(i)), _mm_loadu_pd(pb.add(i))));
        a23 = _mm_add_pd(a23, _mm_mul_pd(_mm_loadu_pd(pa.add(i + 2)), _mm_loadu_pd(pb.add(i + 2))));
        i += 4;
    }
    let v = _mm_add_pd(a01, a23);
    let mut t = _mm_cvtsd_f64(v) + _mm_cvtsd_f64(_mm_unpackhi_pd(v, v));
    for j in n4..n {
        t += a[j] * b[j];
    }
    t
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
// privim-lint: allow(unsafe, reason = "target_feature fn: callers runtime-detect neon per unsafe-audit; indices stay below min(len)")
unsafe fn dot_neon(a: &[f64], b: &[f64]) -> f64 {
    use std::arch::aarch64::*;
    let n = a.len().min(b.len());
    let n4 = n & !3;
    let mut a01 = vdupq_n_f64(0.0);
    let mut a23 = vdupq_n_f64(0.0);
    let pa = a.as_ptr();
    let pb = b.as_ptr();
    let mut i = 0;
    while i < n4 {
        a01 = vaddq_f64(a01, vmulq_f64(vld1q_f64(pa.add(i)), vld1q_f64(pb.add(i))));
        a23 = vaddq_f64(a23, vmulq_f64(vld1q_f64(pa.add(i + 2)), vld1q_f64(pb.add(i + 2))));
        i += 4;
    }
    let v = vaddq_f64(a01, a23);
    let mut t = vgetq_lane_f64::<0>(v) + vgetq_lane_f64::<1>(v);
    for j in n4..n {
        t += a[j] * b[j];
    }
    t
}

/// Sum of squares `Σ a[i]²` under the 4-lane contract (the DP-SGD
/// gradient-norm primitive; callers take `.sqrt()`).
pub fn sumsq(a: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    {
        match active() {
            // privim-lint: allow(unsafe, reason = "dispatch guard re-checks is_x86_feature_detected! on this exact path; kernel indexes strictly below a.len()")
            Backend::Avx2 if is_x86_feature_detected!("avx2") => return unsafe { sumsq_avx2(a) },
            // privim-lint: allow(unsafe, reason = "dispatch guard re-checks is_x86_feature_detected! on this exact path; kernel indexes strictly below a.len()")
            Backend::Sse2 if is_x86_feature_detected!("sse2") => return unsafe { sumsq_sse2(a) },
            _ => {}
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if active() == Backend::Neon && std::arch::is_aarch64_feature_detected!("neon") {
            // privim-lint: allow(unsafe, reason = "dispatch guard re-checks is_aarch64_feature_detected! on this exact path; kernel indexes strictly below a.len()")
            return unsafe { sumsq_neon(a) };
        }
    }
    sumsq_scalar(a)
}

fn sumsq_scalar(a: &[f64]) -> f64 {
    let n4 = a.len() & !3;
    let mut l = [0.0f64; 4];
    let mut i = 0;
    while i < n4 {
        l[0] += a[i] * a[i];
        l[1] += a[i + 1] * a[i + 1];
        l[2] += a[i + 2] * a[i + 2];
        l[3] += a[i + 3] * a[i + 3];
        i += 4;
    }
    let mut t = (l[0] + l[2]) + (l[1] + l[3]);
    for &x in &a[n4..] {
        t += x * x;
    }
    t
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// privim-lint: allow(unsafe, reason = "target_feature fn: callers runtime-detect avx2 per unsafe-audit; indices stay below a.len()")
unsafe fn sumsq_avx2(a: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    let n4 = a.len() & !3;
    let mut acc = _mm256_setzero_pd();
    let p = a.as_ptr();
    let mut i = 0;
    while i < n4 {
        let v = _mm256_loadu_pd(p.add(i));
        acc = _mm256_add_pd(acc, _mm256_mul_pd(v, v));
        i += 4;
    }
    let lo = _mm256_castpd256_pd128(acc);
    let hi = _mm256_extractf128_pd::<1>(acc);
    let v = _mm_add_pd(lo, hi);
    let mut t = _mm_cvtsd_f64(v) + _mm_cvtsd_f64(_mm_unpackhi_pd(v, v));
    for &x in &a[n4..] {
        t += x * x;
    }
    t
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
// privim-lint: allow(unsafe, reason = "target_feature fn: callers runtime-detect sse2 per unsafe-audit; indices stay below a.len()")
unsafe fn sumsq_sse2(a: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    let n4 = a.len() & !3;
    let mut a01 = _mm_setzero_pd();
    let mut a23 = _mm_setzero_pd();
    let p = a.as_ptr();
    let mut i = 0;
    while i < n4 {
        let v0 = _mm_loadu_pd(p.add(i));
        let v1 = _mm_loadu_pd(p.add(i + 2));
        a01 = _mm_add_pd(a01, _mm_mul_pd(v0, v0));
        a23 = _mm_add_pd(a23, _mm_mul_pd(v1, v1));
        i += 4;
    }
    let v = _mm_add_pd(a01, a23);
    let mut t = _mm_cvtsd_f64(v) + _mm_cvtsd_f64(_mm_unpackhi_pd(v, v));
    for &x in &a[n4..] {
        t += x * x;
    }
    t
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
// privim-lint: allow(unsafe, reason = "target_feature fn: callers runtime-detect neon per unsafe-audit; indices stay below a.len()")
unsafe fn sumsq_neon(a: &[f64]) -> f64 {
    use std::arch::aarch64::*;
    let n4 = a.len() & !3;
    let mut a01 = vdupq_n_f64(0.0);
    let mut a23 = vdupq_n_f64(0.0);
    let p = a.as_ptr();
    let mut i = 0;
    while i < n4 {
        let v0 = vld1q_f64(p.add(i));
        let v1 = vld1q_f64(p.add(i + 2));
        a01 = vaddq_f64(a01, vmulq_f64(v0, v0));
        a23 = vaddq_f64(a23, vmulq_f64(v1, v1));
        i += 4;
    }
    let v = vaddq_f64(a01, a23);
    let mut t = vgetq_lane_f64::<0>(v) + vgetq_lane_f64::<1>(v);
    for &x in &a[n4..] {
        t += x * x;
    }
    t
}

// ---------------------------------------------------------------------
// Integer dot (quantized inference). Exact arithmetic: i8×i8 products
// accumulated in i32 cannot overflow below ~2^16 terms, and integer
// addition is associative — any lane layout gives identical bits.
// ---------------------------------------------------------------------

/// `Σ a[i]·b[i]` over `i8` operands, exact in `i32`.
pub fn idot(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert!(a.len() < (1 << 16), "i32 accumulator headroom");
    #[cfg(target_arch = "x86_64")]
    {
        if active() == Backend::Avx2 && is_x86_feature_detected!("avx2") {
            // privim-lint: allow(unsafe, reason = "dispatch guard re-checks is_x86_feature_detected! on this exact path; kernel indexes strictly below min(len)")
            return unsafe { idot_avx2(a, b) };
        }
    }
    idot_scalar(a, b)
}

fn idot_scalar(a: &[i8], b: &[i8]) -> i32 {
    a.iter().zip(b).map(|(&x, &y)| x as i32 * y as i32).sum()
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// privim-lint: allow(unsafe, reason = "target_feature fn: callers runtime-detect avx2 per unsafe-audit; 16-byte loads stay below min(len) and each madd term is ≤ 2·127² so the i32 lanes cannot overflow for len < 2^16")
unsafe fn idot_avx2(a: &[i8], b: &[i8]) -> i32 {
    use std::arch::x86_64::*;
    let n = a.len().min(b.len());
    let n16 = n & !15;
    let mut acc = _mm256_setzero_si256();
    let pa = a.as_ptr();
    let pb = b.as_ptr();
    let mut i = 0;
    while i < n16 {
        let av = _mm256_cvtepi8_epi16(_mm_loadu_si128(pa.add(i) as *const __m128i));
        let bv = _mm256_cvtepi8_epi16(_mm_loadu_si128(pb.add(i) as *const __m128i));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
        i += 16;
    }
    let lo = _mm256_castsi256_si128(acc);
    let hi = _mm256_extracti128_si256::<1>(acc);
    let v = _mm_add_epi32(lo, hi);
    let v = _mm_add_epi32(v, _mm_shuffle_epi32::<0b_01_00_11_10>(v));
    let v = _mm_add_epi32(v, _mm_shuffle_epi32::<0b_00_00_00_01>(v));
    let mut t = _mm_cvtsi128_si32(v);
    for j in n16..n {
        t += a[j] as i32 * b[j] as i32;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vec_pat(n: usize, salt: u64) -> Vec<f64> {
        (0..n)
            .map(|i| ((i as u64 * 2654435761 + salt * 40503) % 1000) as f64 / 37.0 - 13.0)
            .collect()
    }

    fn backends_under_test() -> Vec<Choice> {
        // Exercise every choice; unsupported ones resolve to scalar, which
        // still checks the dispatcher paths.
        vec![Choice::Scalar, Choice::Sse2, Choice::Avx2, Choice::Neon, Choice::Auto]
    }

    fn with_backend<T>(c: Choice, f: impl FnOnce() -> T) -> T {
        set_backend(Some(c));
        let out = f();
        set_backend(None);
        out
    }

    #[test]
    fn every_backend_is_bit_identical_to_scalar() {
        for n in [0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 63, 64, 65, 257] {
            let a = vec_pat(n, 1);
            let b = vec_pat(n, 2);
            let want_sum = with_backend(Choice::Scalar, || sum(&a));
            let want_dot = with_backend(Choice::Scalar, || dot(&a, &b));
            let want_sq = with_backend(Choice::Scalar, || sumsq(&a));
            let want_axpy = with_backend(Choice::Scalar, || {
                let mut y = b.clone();
                axpy(&mut y, 1.75, &a);
                y
            });
            for c in backends_under_test() {
                assert_eq!(with_backend(c, || sum(&a)).to_bits(), want_sum.to_bits(), "sum {c:?} n={n}");
                assert_eq!(with_backend(c, || dot(&a, &b)).to_bits(), want_dot.to_bits(), "dot {c:?} n={n}");
                assert_eq!(with_backend(c, || sumsq(&a)).to_bits(), want_sq.to_bits(), "sumsq {c:?} n={n}");
                let got = with_backend(c, || {
                    let mut y = b.clone();
                    axpy(&mut y, 1.75, &a);
                    y
                });
                for (g, w) in got.iter().zip(&want_axpy) {
                    assert_eq!(g.to_bits(), w.to_bits(), "axpy {c:?} n={n}");
                }
                let got_add = with_backend(c, || {
                    let mut y = b.clone();
                    add_assign(&mut y, &a);
                    y
                });
                let want_add: Vec<f64> = b.iter().zip(&a).map(|(&x, &y)| x + y).collect();
                for (g, w) in got_add.iter().zip(&want_add) {
                    assert_eq!(g.to_bits(), w.to_bits(), "add_assign {c:?} n={n}");
                }
                let got_scale = with_backend(c, || {
                    let mut y = a.clone();
                    scale(&mut y, 0.3);
                    y
                });
                for (g, &w) in got_scale.iter().zip(&a) {
                    assert_eq!(g.to_bits(), (w * 0.3).to_bits(), "scale {c:?} n={n}");
                }
            }
        }
    }

    #[test]
    fn idot_matches_exact_integer_reference() {
        for n in [0, 1, 15, 16, 17, 31, 32, 100, 257] {
            let a: Vec<i8> = (0..n).map(|i| ((i * 37) % 255) as i8).collect();
            let b: Vec<i8> = (0..n).map(|i| ((i * 91 + 13) % 255) as i8).collect();
            let want: i32 = a.iter().zip(&b).map(|(&x, &y)| x as i32 * y as i32).sum();
            for c in backends_under_test() {
                assert_eq!(with_backend(c, || idot(&a, &b)), want, "{c:?} n={n}");
            }
        }
    }

    #[test]
    fn reduction_uses_the_documented_lane_order_not_sequential_sum() {
        // A vector engineered so sequential summation differs in the last
        // bit from the 4-lane contract — proves we pinned the *contract*,
        // not whatever the compiler emitted.
        let a = vec![1.0, 1e-16, 1e-16, 1e-16, 1.0, 1e-16, 1e-16, 1e-16];
        let lanes = {
            let mut l = [0.0f64; 4];
            for c in a.chunks(4) {
                for (j, &x) in c.iter().enumerate() {
                    l[j] += x;
                }
            }
            (l[0] + l[2]) + (l[1] + l[3])
        };
        assert_eq!(sum(&a).to_bits(), lanes.to_bits());
    }

    #[test]
    fn env_parse_accepts_the_documented_values() {
        assert_eq!(parse_choice("scalar"), Choice::Scalar);
        assert_eq!(parse_choice("AVX2"), Choice::Avx2);
        assert_eq!(parse_choice("sse2"), Choice::Sse2);
        assert_eq!(parse_choice("neon"), Choice::Neon);
        assert_eq!(parse_choice("auto"), Choice::Auto);
        assert_eq!(parse_choice("mystery"), Choice::Auto);
    }

    #[test]
    fn active_resolves_to_a_supported_backend() {
        let b = active();
        #[cfg(target_arch = "x86_64")]
        assert_ne!(b, Backend::Neon);
        #[cfg(target_arch = "aarch64")]
        assert!(matches!(b, Backend::Neon | Backend::Scalar));
        assert!(!b.name().is_empty());
        assert!(!detected_features().is_empty());
    }
}

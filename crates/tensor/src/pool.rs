//! Thread-local `f64` buffer pool — the workspace behind every [`Matrix`]
//! allocation.
//!
//! DP-SGD's per-sample loop builds a fresh autograd tape for every subgraph
//! in every batch, and each tape op used to call `vec![0.0; n]` for its
//! value (and again for its gradient on the way back). At paper shapes
//! (≤ ~80 rows × 32 cols) the allocator round-trip dominates the arithmetic.
//! This pool recycles the backing `Vec<f64>`s instead: [`Matrix`]'s `Drop`
//! returns buffers here, and the constructors in `matrix.rs` draw from it.
//!
//! The pool is **thread-local**, which makes it free of locks and — because
//! `privim_rt::par` keeps its workers alive for the whole process — lets
//! each worker's pool stay warm across batches.
//!
//! Determinism: a recycled buffer is either fully overwritten (`map`/`zip`/
//! clone paths extend into a cleared vec) or explicitly zero-filled
//! (`zeros`), so buffer identity can never reach results.
//!
//! [`Matrix`]: crate::Matrix

use std::cell::RefCell;

/// Buffers larger than this are returned to the allocator, not pooled —
/// keeps a one-off giant experiment matrix from pinning memory per thread.
const MAX_POOLED_LEN: usize = 1 << 20;

/// At most this many buffers are retained per thread.
const MAX_POOLED_BUFFERS: usize = 64;

/// Retained capacity cap per thread (in `f64`s; 4 M ≈ 32 MB).
const MAX_POOLED_TOTAL: usize = 4 << 20;

#[derive(Default)]
struct BufferPool {
    /// Most recently released last (LIFO reuse keeps buffers cache-warm).
    buffers: Vec<Vec<f64>>,
    /// Total capacity currently retained, in elements.
    retained: usize,
}

thread_local! {
    static POOL: RefCell<BufferPool> = RefCell::new(BufferPool::default());
}

/// Take a cleared buffer with `capacity >= len` (freshly allocated if the
/// pool holds nothing suitable). The returned vec always has `len() == 0`.
///
/// Uses `try_with`: during thread teardown the pool TLS may already be
/// destroyed while other thread-locals (e.g. the scratch tape) still drop
/// matrices — those calls silently fall back to the allocator.
pub(crate) fn acquire(len: usize) -> Vec<f64> {
    POOL.try_with(|cell| {
        let mut pool = cell.borrow_mut();
        // LIFO scan for the first buffer big enough.
        for i in (0..pool.buffers.len()).rev() {
            if pool.buffers[i].capacity() >= len {
                let buf = pool.buffers.swap_remove(i);
                pool.retained -= buf.capacity();
                return buf;
            }
        }
        Vec::with_capacity(len)
    })
    .unwrap_or_else(|_destroyed| Vec::with_capacity(len))
}

/// Return a buffer to this thread's pool (or drop it if it is oversized,
/// the pool is at capacity, or the thread is tearing down its TLS).
pub(crate) fn release(mut buf: Vec<f64>) {
    let cap = buf.capacity();
    if cap == 0 || cap > MAX_POOLED_LEN {
        return;
    }
    let _ = POOL.try_with(|cell| {
        let mut pool = cell.borrow_mut();
        if pool.buffers.len() >= MAX_POOLED_BUFFERS || pool.retained + cap > MAX_POOLED_TOTAL {
            return;
        }
        buf.clear();
        pool.retained += cap;
        pool.buffers.push(buf);
    });
}

/// Number of buffers currently pooled on this thread (tests/diagnostics).
pub fn pooled_buffers() -> usize {
    POOL.try_with(|cell| cell.borrow().buffers.len())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn release_then_acquire_reuses_the_allocation() {
        let mut buf = acquire(100);
        buf.resize(100, 1.0);
        let ptr = buf.as_ptr();
        let cap = buf.capacity();
        release(buf);
        let again = acquire(50);
        assert_eq!(again.as_ptr(), ptr, "expected the pooled buffer back");
        assert_eq!(again.capacity(), cap);
        assert!(again.is_empty(), "acquired buffers must be cleared");
    }

    #[test]
    fn undersized_buffers_are_skipped() {
        // drain whatever other tests left behind so the assertion is local
        while pooled_buffers() > 0 {
            drop(acquire(0));
        }
        let mut small = acquire(8);
        small.resize(8, 0.0);
        release(small);
        let big = acquire(MAX_POOLED_LEN / 2);
        assert!(big.capacity() >= MAX_POOLED_LEN / 2);
        assert_eq!(pooled_buffers(), 1, "small buffer should still be pooled");
    }

    #[test]
    fn oversized_buffers_are_not_retained() {
        let before = pooled_buffers();
        release(Vec::with_capacity(MAX_POOLED_LEN + 1));
        assert_eq!(pooled_buffers(), before);
        release(Vec::new());
        assert_eq!(pooled_buffers(), before);
    }

    #[test]
    fn pool_size_is_bounded() {
        for _ in 0..(MAX_POOLED_BUFFERS * 2) {
            release(Vec::with_capacity(16));
        }
        assert!(pooled_buffers() <= MAX_POOLED_BUFFERS);
    }
}

//! Thread-local 64-byte-aligned `f64` buffer pool — the workspace behind
//! every [`Matrix`] allocation.
//!
//! DP-SGD's per-sample loop builds a fresh autograd tape for every subgraph
//! in every batch, and each tape op used to call `vec![0.0; n]` for its
//! value (and again for its gradient on the way back). At paper shapes
//! (≤ ~80 rows × 32 cols) the allocator round-trip dominates the arithmetic.
//! This pool recycles the backing [`AlignedBuf`]s instead: [`Matrix`]'s
//! `Drop` returns buffers here, and the constructors in `matrix.rs` draw
//! from it.
//!
//! Buffers are **64-byte aligned** ([`ALIGN`]): one cache line, and wide
//! enough for every vector width the [`crate::simd`] backends use (AVX2's
//! 32-byte loads included), so the `loadu` opcodes the kernels issue never
//! actually hit a split-line access. Alignment is a property of the
//! allocation, not a correctness requirement — the kernels are
//! unaligned-tolerant by construction.
//!
//! The pool is **thread-local**, which makes it free of locks and — because
//! `privim_rt::par` keeps its workers alive for the whole process — lets
//! each worker's pool stay warm across batches.
//!
//! Determinism: a recycled buffer is either fully overwritten (`map`/`zip`/
//! clone paths extend into a cleared buffer) or explicitly zero-filled
//! (`zeros`), so buffer identity can never reach results.
//!
//! [`Matrix`]: crate::Matrix

use std::alloc::{alloc, dealloc, Layout};
use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

/// Allocation alignment in bytes for every pooled buffer.
pub const ALIGN: usize = 64;

/// Buffers larger than this are returned to the allocator, not pooled —
/// keeps a one-off giant experiment matrix from pinning memory per thread.
const MAX_POOLED_LEN: usize = 1 << 20;

/// At most this many buffers are retained per thread.
const MAX_POOLED_BUFFERS: usize = 64;

/// Retained capacity cap per thread (in `f64`s; 4 M ≈ 32 MB).
const MAX_POOLED_TOTAL: usize = 4 << 20;

/// A growable `f64` buffer whose allocation is always [`ALIGN`]-byte
/// aligned. The subset of `Vec<f64>` the matrix layer needs, minus any
/// alignment surprises: `Vec`'s allocator contract only guarantees the
/// element alignment (8), which would leave SIMD loads straddling cache
/// lines whenever the allocator felt like it.
pub struct AlignedBuf {
    ptr: NonNull<f64>,
    len: usize,
    cap: usize,
}

// privim-lint: allow(unsafe, reason = "AlignedBuf uniquely owns its allocation (no aliasing handles exist) and f64 is Send+Sync, so moving or sharing the buffer across threads is exactly as sound as Vec<f64>")
unsafe impl Send for AlignedBuf {}
// privim-lint: allow(unsafe, reason = "AlignedBuf uniquely owns its allocation (no aliasing handles exist) and f64 is Send+Sync, so moving or sharing the buffer across threads is exactly as sound as Vec<f64>")
unsafe impl Sync for AlignedBuf {}

fn layout_for(cap: usize) -> Layout {
    Layout::from_size_align(cap * std::mem::size_of::<f64>(), ALIGN)
        // privim-lint: allow(panic, reason = "trips only on an address-space-sized request (cap*8 overflowing usize), where the global allocator would abort anyway; matrix shapes are bounded far below this")
        .expect("aligned buffer layout overflow")
}

impl AlignedBuf {
    /// Empty buffer, no allocation.
    pub fn new() -> AlignedBuf {
        AlignedBuf {
            ptr: NonNull::dangling(),
            len: 0,
            cap: 0,
        }
    }

    /// Empty buffer with at least `cap` elements of aligned capacity.
    pub fn with_capacity(cap: usize) -> AlignedBuf {
        if cap == 0 {
            return AlignedBuf::new();
        }
        let layout = layout_for(cap);
        // privim-lint: allow(unsafe, reason = "layout has non-zero size (cap > 0 checked above) and the null return is handled, which is the entire alloc contract")
        let raw = unsafe { alloc(layout) } as *mut f64;
        let Some(ptr) = NonNull::new(raw) else {
            std::alloc::handle_alloc_error(layout)
        };
        AlignedBuf { ptr, len: 0, cap }
    }

    /// Current element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no elements are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Allocated capacity in elements.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Drop all elements (keeps the allocation).
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Ensure room for `additional` more elements.
    pub fn reserve(&mut self, additional: usize) {
        let need = self.len + additional;
        if need <= self.cap {
            return;
        }
        let new_cap = need.max(self.cap * 2).max(4);
        let mut grown = AlignedBuf::with_capacity(new_cap);
        // privim-lint: allow(unsafe, reason = "copies exactly self.len elements between two distinct allocations each sized for at least self.len")
        unsafe {
            std::ptr::copy_nonoverlapping(self.ptr.as_ptr(), grown.ptr.as_ptr(), self.len);
        }
        grown.len = self.len;
        *self = grown;
    }

    /// Append one element.
    #[inline]
    pub fn push(&mut self, x: f64) {
        if self.len == self.cap {
            self.reserve(1);
        }
        // privim-lint: allow(unsafe, reason = "reserve above guarantees len < cap, so the write lands inside the allocation")
        unsafe {
            self.ptr.as_ptr().add(self.len).write(x);
        }
        self.len += 1;
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, s: &[f64]) {
        self.reserve(s.len());
        // privim-lint: allow(unsafe, reason = "reserve guarantees cap ≥ len + s.len(), source and destination are distinct allocations, and f64 is Copy")
        unsafe {
            std::ptr::copy_nonoverlapping(s.as_ptr(), self.ptr.as_ptr().add(self.len), s.len());
        }
        self.len += s.len();
    }

    /// Append every item of an iterator.
    pub fn extend_iter(&mut self, it: impl Iterator<Item = f64>) {
        let (lower, _) = it.size_hint();
        self.reserve(lower);
        for x in it {
            self.push(x);
        }
    }

    /// Resize to `n` elements, filling new tail slots with `value`.
    pub fn resize(&mut self, n: usize, value: f64) {
        if n <= self.len {
            self.len = n;
            return;
        }
        self.reserve(n - self.len);
        // privim-lint: allow(unsafe, reason = "reserve guarantees cap ≥ n; every slot in len..n is written before len is bumped to cover it")
        unsafe {
            for i in self.len..n {
                self.ptr.as_ptr().add(i).write(value);
            }
        }
        self.len = n;
    }

    /// Borrow the contents as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        // privim-lint: allow(unsafe, reason = "ptr is valid for len initialised elements (every len increase writes them first) and dangling-but-aligned when len == 0, which from_raw_parts permits")
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    /// Borrow the contents mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        // privim-lint: allow(unsafe, reason = "unique &mut receiver and ptr valid for len initialised elements, the from_raw_parts_mut contract")
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }

    /// Raw pointer to the first element.
    #[inline]
    pub fn as_ptr(&self) -> *const f64 {
        self.ptr.as_ptr()
    }
}

impl Default for AlignedBuf {
    fn default() -> AlignedBuf {
        AlignedBuf::new()
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        if self.cap != 0 {
            // privim-lint: allow(unsafe, reason = "ptr came from alloc with exactly this layout (cap recorded at allocation, never mutated elsewhere) and is freed exactly once: Drop owns the value")
            unsafe {
                dealloc(self.ptr.as_ptr() as *mut u8, layout_for(self.cap));
            }
        }
    }
}

impl Deref for AlignedBuf {
    type Target = [f64];
    #[inline]
    fn deref(&self) -> &[f64] {
        self.as_slice()
    }
}

impl DerefMut for AlignedBuf {
    #[inline]
    fn deref_mut(&mut self) -> &mut [f64] {
        self.as_mut_slice()
    }
}

impl PartialEq for AlignedBuf {
    fn eq(&self, other: &AlignedBuf) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::fmt::Debug for AlignedBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

#[derive(Default)]
struct BufferPool {
    /// Most recently released last (LIFO reuse keeps buffers cache-warm).
    buffers: Vec<AlignedBuf>,
    /// Total capacity currently retained, in elements.
    retained: usize,
}

thread_local! {
    static POOL: RefCell<BufferPool> = RefCell::new(BufferPool::default());
}

/// Take a cleared buffer with `capacity >= len` (freshly allocated if the
/// pool holds nothing suitable). The returned buffer always has
/// `len() == 0` and an [`ALIGN`]-byte-aligned allocation.
///
/// Uses `try_with`: during thread teardown the pool TLS may already be
/// destroyed while other thread-locals (e.g. the scratch tape) still drop
/// matrices — those calls silently fall back to the allocator.
pub(crate) fn acquire(len: usize) -> AlignedBuf {
    POOL.try_with(|cell| {
        let mut pool = cell.borrow_mut();
        // LIFO scan for the first buffer big enough.
        for i in (0..pool.buffers.len()).rev() {
            if pool.buffers[i].capacity() >= len {
                let buf = pool.buffers.swap_remove(i);
                pool.retained -= buf.capacity();
                return buf;
            }
        }
        AlignedBuf::with_capacity(len)
    })
    .unwrap_or_else(|_destroyed| AlignedBuf::with_capacity(len))
}

/// Return a buffer to this thread's pool (or drop it if it is oversized,
/// the pool is at capacity, or the thread is tearing down its TLS).
pub(crate) fn release(mut buf: AlignedBuf) {
    let cap = buf.capacity();
    if cap == 0 || cap > MAX_POOLED_LEN {
        return;
    }
    let _ = POOL.try_with(|cell| {
        let mut pool = cell.borrow_mut();
        if pool.buffers.len() >= MAX_POOLED_BUFFERS || pool.retained + cap > MAX_POOLED_TOTAL {
            return;
        }
        buf.clear();
        pool.retained += cap;
        pool.buffers.push(buf);
    });
}

/// Number of buffers currently pooled on this thread (tests/diagnostics).
pub fn pooled_buffers() -> usize {
    POOL.try_with(|cell| cell.borrow().buffers.len())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn release_then_acquire_reuses_the_allocation() {
        let mut buf = acquire(100);
        buf.resize(100, 1.0);
        let ptr = buf.as_ptr();
        let cap = buf.capacity();
        release(buf);
        let again = acquire(50);
        assert_eq!(again.as_ptr(), ptr, "expected the pooled buffer back");
        assert_eq!(again.capacity(), cap);
        assert!(again.is_empty(), "acquired buffers must be cleared");
    }

    #[test]
    fn undersized_buffers_are_skipped() {
        // drain whatever other tests left behind so the assertion is local
        while pooled_buffers() > 0 {
            drop(acquire(0));
        }
        let mut small = acquire(8);
        small.resize(8, 0.0);
        release(small);
        let big = acquire(MAX_POOLED_LEN / 2);
        assert!(big.capacity() >= MAX_POOLED_LEN / 2);
        assert_eq!(pooled_buffers(), 1, "small buffer should still be pooled");
    }

    #[test]
    fn oversized_buffers_are_not_retained() {
        let before = pooled_buffers();
        release(AlignedBuf::with_capacity(MAX_POOLED_LEN + 1));
        assert_eq!(pooled_buffers(), before);
        release(AlignedBuf::new());
        assert_eq!(pooled_buffers(), before);
    }

    #[test]
    fn pool_size_is_bounded() {
        for _ in 0..(MAX_POOLED_BUFFERS * 2) {
            release(AlignedBuf::with_capacity(16));
        }
        assert!(pooled_buffers() <= MAX_POOLED_BUFFERS);
    }

    #[test]
    fn every_allocation_is_64_byte_aligned() {
        // fresh, pooled, and grown allocations all honour ALIGN
        for len in [1, 3, 7, 100, 4096] {
            let buf = acquire(len);
            assert_eq!(buf.as_ptr() as usize % ALIGN, 0, "fresh len={len}");
            release(buf);
            let again = acquire(len);
            assert_eq!(again.as_ptr() as usize % ALIGN, 0, "pooled len={len}");
        }
        let mut grown = AlignedBuf::with_capacity(2);
        for i in 0..1000 {
            grown.push(i as f64);
            assert_eq!(grown.as_ptr() as usize % ALIGN, 0, "grown at {i}");
        }
        assert_eq!(grown.len(), 1000);
        assert_eq!(grown[999], 999.0);
    }

    #[test]
    fn buf_behaves_like_a_vec() {
        let mut b = AlignedBuf::new();
        assert!(b.is_empty());
        b.extend_from_slice(&[1.0, 2.0]);
        b.push(3.0);
        b.extend_iter([4.0, 5.0].into_iter());
        assert_eq!(&b[..], &[1.0, 2.0, 3.0, 4.0, 5.0]);
        b.resize(3, 0.0);
        assert_eq!(&b[..], &[1.0, 2.0, 3.0]);
        b.resize(5, 9.0);
        assert_eq!(&b[..], &[1.0, 2.0, 3.0, 9.0, 9.0]);
        b[0] = -1.0;
        assert_eq!(b[0], -1.0);
        let c = AlignedBuf::new();
        assert!(c.is_empty());
        assert_ne!(b, c);
        b.clear();
        assert_eq!(b, c);
    }
}

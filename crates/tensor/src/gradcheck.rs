//! Finite-difference gradient verification.
//!
//! Every op's backward rule is checked against central differences:
//! `∂L/∂x ≈ (L(x+h) - L(x-h)) / 2h`. This is the correctness anchor for the
//! whole training stack — if these pass, DP-SGD sees true gradients.

use crate::matrix::Matrix;
use crate::tape::{Tape, Var};

/// Compare analytic and numeric gradients of `f` at `inputs`.
///
/// `f` receives a fresh tape plus leaf vars for each input and must return
/// the scalar loss var. Returns the maximum absolute deviation over all
/// input coordinates.
pub fn max_gradient_error(inputs: &[Matrix], h: f64, f: impl Fn(&mut Tape, &[Var]) -> Var) -> f64 {
    // Analytic gradients.
    let mut tape = Tape::new();
    let vars: Vec<Var> = inputs.iter().map(|m| tape.leaf(m.clone())).collect();
    let loss = f(&mut tape, &vars);
    let grads = tape.backward(loss);

    let eval = |perturbed: &[Matrix]| -> f64 {
        let mut t = Tape::new();
        let vs: Vec<Var> = perturbed.iter().map(|m| t.leaf(m.clone())).collect();
        let l = f(&mut t, &vs);
        t.value(l).get(0, 0)
    };

    let mut worst = 0.0f64;
    for (i, input) in inputs.iter().enumerate() {
        for idx in 0..input.data().len() {
            let mut plus = inputs.to_vec();
            plus[i].data_mut()[idx] += h;
            let mut minus = inputs.to_vec();
            minus[i].data_mut()[idx] -= h;
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * h);
            let analytic = grads.wrt(vars[i]).data()[idx];
            worst = worst.max((numeric - analytic).abs());
        }
    }
    worst
}

/// Assert gradients agree within `tol`.
pub fn assert_gradients_match(inputs: &[Matrix], tol: f64, f: impl Fn(&mut Tape, &[Var]) -> Var) {
    let err = max_gradient_error(inputs, 1e-5, f);
    assert!(err < tol, "gradient mismatch: max error {err} > tol {tol}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::SparseMatrix;
    use privim_rt::{ChaCha8Rng, Rng, SeedableRng};
    use std::sync::Arc;

    fn small_matrix(rows: usize, cols: usize, rng: &mut ChaCha8Rng) -> Matrix {
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-2.0f64..2.0))
            .collect();
        Matrix::from_vec(rows, cols, data)
    }

    /// Deterministic property harness: run `f` over `n` seeded cases.
    fn for_cases(n: u64, mut f: impl FnMut(&mut ChaCha8Rng)) {
        for case in 0..n {
            let mut rng = ChaCha8Rng::seed_from_u64(0x6AD0_0000 + case);
            f(&mut rng);
        }
    }

    #[test]
    fn matmul_sigmoid_sum_gradcheck() {
        for_cases(24, |rng| {
            let a = small_matrix(3, 2, rng);
            let b = small_matrix(2, 4, rng);
            assert_gradients_match(&[a, b], 1e-6, |t, v| {
                let c = t.matmul(v[0], v[1]);
                let s = t.sigmoid(c);
                t.sum(s)
            });
        });
    }

    #[test]
    fn elementwise_chain_gradcheck() {
        for_cases(24, |rng| {
            let a = small_matrix(2, 3, rng);
            let b = small_matrix(2, 3, rng);
            assert_gradients_match(&[a, b], 1e-6, |t, v| {
                let m = t.mul(v[0], v[1]);
                let s = t.sub(m, v[1]);
                let tt = t.tanh(s);
                t.mean(tt)
            });
        });
    }

    #[test]
    fn bias_broadcast_gradcheck() {
        for_cases(24, |rng| {
            let a = small_matrix(4, 3, rng);
            let b = small_matrix(1, 3, rng);
            assert_gradients_match(&[a, b], 1e-6, |t, v| {
                let y = t.add_row_broadcast(v[0], v[1]);
                let r = t.relu(y);
                t.sum(r)
            });
        });
    }

    #[test]
    fn leaky_relu_exp_gradcheck() {
        for_cases(24, |rng| {
            let a = small_matrix(3, 3, rng);
            // avoid kink at 0 by shifting
            let shifted = a.map(|x| if x.abs() < 0.05 { x + 0.1 } else { x });
            assert_gradients_match(&[shifted], 1e-5, |t, v| {
                let l = t.leaky_relu(v[0], 0.2);
                let e = t.exp(l);
                t.mean(e)
            });
        });
    }

    #[test]
    fn concat_gradcheck() {
        for_cases(24, |rng| {
            let a = small_matrix(3, 2, rng);
            let b = small_matrix(3, 3, rng);
            assert_gradients_match(&[a, b], 1e-6, |t, v| {
                let c = t.concat_cols(v[0], v[1]);
                let s = t.sigmoid(c);
                t.sum(s)
            });
        });
    }

    #[test]
    fn gather_scatter_gradcheck() {
        for_cases(24, |rng| {
            let a = small_matrix(4, 2, rng);
            let idx = Arc::new(vec![3u32, 0, 0, 2, 1]);
            let back = Arc::new(vec![1u32, 1, 0, 3, 2]);
            assert_gradients_match(&[a], 1e-6, move |t, v| {
                let g = t.gather_rows(v[0], idx.clone());
                let s = t.scatter_add_rows(g, back.clone(), 4);
                let sq = t.mul(s, s);
                t.sum(sq)
            });
        });
    }

    #[test]
    fn segment_softmax_gradcheck() {
        for_cases(24, |rng| {
            let s = small_matrix(6, 1, rng);
            let seg = Arc::new(vec![0u32, 0, 1, 1, 1, 2]);
            assert_gradients_match(&[s], 1e-5, move |t, v| {
                let y = t.segment_softmax(v[0], seg.clone());
                let sq = t.mul(y, y);
                t.sum(sq)
            });
        });
    }

    #[test]
    fn mul_col_broadcast_gradcheck() {
        for_cases(24, |rng| {
            let c = small_matrix(3, 1, rng);
            let a = small_matrix(3, 4, rng);
            assert_gradients_match(&[c, a], 1e-6, |t, v| {
                let y = t.mul_col_broadcast(v[0], v[1]);
                let s = t.sigmoid(y);
                t.sum(s)
            });
        });
    }

    #[test]
    fn spmm_gradcheck() {
        for_cases(24, |rng| {
            let h = small_matrix(4, 2, rng);
            let sp = SparseMatrix::from_triplets(
                3,
                4,
                [(0, 1, 0.5), (0, 3, -1.2), (1, 0, 2.0), (2, 2, 0.7)],
            );
            assert_gradients_match(&[h], 1e-6, move |t, v| {
                let sid = t.sparse_const(sp.clone());
                let y = t.spmm(sid, v[0]);
                let s = t.tanh(y);
                t.sum(s)
            });
        });
    }

    #[test]
    fn im_loss_shape_gradcheck() {
        for_cases(24, |rng| {
            let p_raw = small_matrix(5, 1, rng);
            // The actual Eq. 5 structure: p = sigmoid(x); inactive = 1 - clamp01(A·p);
            // loss = sum(inactive) + λ sum(p)
            let sp = SparseMatrix::from_triplets(
                5,
                5,
                [
                    (0, 1, 0.3),
                    (1, 2, 0.3),
                    (2, 3, 0.3),
                    (3, 4, 0.3),
                    (4, 0, 0.3),
                    (0, 2, 0.3),
                ],
            );
            assert_gradients_match(&[p_raw], 1e-5, move |t, v| {
                let p = t.sigmoid(v[0]);
                let sid = t.sparse_const(sp.clone());
                let agg = t.spmm(sid, p);
                let phat = t.clamp01(agg);
                let inactive = t.one_minus(phat);
                let a = t.sum(inactive);
                let b = t.sum(p);
                let b_scaled = t.scale(b, 0.5);
                t.add(a, b_scaled)
            });
        });
    }

    #[test]
    fn reports_error_for_wrong_gradient() {
        // Deliberately use a function whose finite difference at the relu
        // kink differs — verifies the harness can detect discrepancies.
        let x = Matrix::from_rows(&[&[1.0, -1.0]]);
        let err = max_gradient_error(&[x], 1e-5, |t, v| {
            let r = t.relu(v[0]);
            t.sum(r)
        });
        assert!(err < 1e-6, "away from the kink relu must check out: {err}");
    }
}

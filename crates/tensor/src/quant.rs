//! Quantized weight storage for the serving path.
//!
//! Two formats, both produced at *pack* time so the serve loop never pays
//! for conversion:
//!
//! * **int8** ([`QuantWeights`]): symmetric per-output-column scales over
//!   a transposed `i8` weight block. Inference quantizes each activation
//!   row on the fly (per-row scale), runs exact integer dot products
//!   ([`crate::simd::idot`]), and rescales once per output element — no
//!   dequantized weight matrix is ever materialised. Because the integer
//!   accumulation is exact, the quantized path is bit-identical across
//!   every `PRIVIM_SIMD` backend by construction.
//! * **f16** ([`F16Matrix`]): storage-only half-precision. Weights are
//!   rounded to IEEE-754 binary16 at pack time and decoded back to `f64`
//!   at load time; compute stays in the ordinary dense path.
//!
//! Error model (int8): with column scale `s_j = max_i |w_ij| / 127`,
//! dequantized weights satisfy `|ŵ_ij − w_ij| ≤ s_j / 2`, and the matmul
//! additionally rounds each activation row with its own scale — the
//! round-trip and end-to-end bounds are pinned by tests here and in
//! `tests/determinism.rs`.

use crate::matrix::Matrix;
use crate::simd;
use privim_rt::json::{ToJson, Value};

/// Symmetric signed range: quantized codes live in `[-127, 127]` (the
/// code `-128` is never produced, keeping negation exact).
const QMAX: f64 = 127.0;

/// Per-output-column symmetric int8 quantization of a dense weight
/// matrix, stored transposed so each output column is a contiguous `i8`
/// row for [`simd::idot`].
#[derive(Clone, Debug, PartialEq)]
pub struct QuantWeights {
    in_dim: usize,
    out_dim: usize,
    /// Dequantization scale per output column (`len == out_dim`).
    scales: Vec<f64>,
    /// Transposed codes: row `j` holds column `j` of the source matrix
    /// (`len == in_dim * out_dim`).
    qt: Vec<i8>,
}

impl QuantWeights {
    /// Quantize `w` (shape `in_dim × out_dim`). Each output column `j`
    /// gets scale `s_j = max_i |w_ij| / 127` and codes
    /// `round(w_ij / s_j)`; an all-zero column gets scale `0` and zero
    /// codes (dequantizes exactly).
    pub fn quantize(w: &Matrix) -> QuantWeights {
        let (in_dim, out_dim) = w.shape();
        assert!(in_dim < (1 << 16), "idot i32 headroom needs in_dim < 2^16");
        let mut scales = vec![0.0f64; out_dim];
        let mut qt = vec![0i8; in_dim * out_dim];
        for j in 0..out_dim {
            let mut absmax = 0.0f64;
            for i in 0..in_dim {
                absmax = absmax.max(w.get(i, j).abs());
            }
            // `!(absmax > 0)` also routes NaN columns to the zero encoding
            // rather than poisoning every code in the column
            if !(absmax > 0.0) {
                continue;
            }
            let s = absmax / QMAX;
            scales[j] = s;
            let row = &mut qt[j * in_dim..(j + 1) * in_dim];
            for (i, q) in row.iter_mut().enumerate() {
                *q = (w.get(i, j) / s).round().clamp(-QMAX, QMAX) as i8;
            }
        }
        QuantWeights {
            in_dim,
            out_dim,
            scales,
            qt,
        }
    }

    /// Input (contraction) dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Reconstruct the approximate dense matrix
    /// (`ŵ_ij = q_ij · s_j`, so `|ŵ_ij − w_ij| ≤ s_j / 2`).
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.in_dim, self.out_dim);
        for j in 0..self.out_dim {
            let s = self.scales[j];
            let row = &self.qt[j * self.in_dim..(j + 1) * self.in_dim];
            for (i, &q) in row.iter().enumerate() {
                out.set(i, j, q as f64 * s);
            }
        }
        out
    }

    /// `x × ŵ` without materialising `ŵ`: each activation row is
    /// quantized with its own symmetric scale, contracted against the
    /// `i8` columns by exact integer dot products, and rescaled once per
    /// output element. Bit-identical across SIMD backends (integer
    /// accumulation is exact, so summation order cannot matter).
    pub fn matmul(&self, x: &Matrix) -> Matrix {
        assert_eq!(
            x.cols(),
            self.in_dim,
            "quant matmul {}x{} × {}x{}",
            x.rows(),
            x.cols(),
            self.in_dim,
            self.out_dim
        );
        let mut out = Matrix::zeros(x.rows(), self.out_dim);
        let mut xq = vec![0i8; self.in_dim];
        for r in 0..x.rows() {
            let xrow = x.row(r);
            let absmax = xrow.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
            if !(absmax > 0.0) {
                continue; // zero (or non-finite-free empty) row stays zero
            }
            let sa = absmax / QMAX;
            for (q, &v) in xq.iter_mut().zip(xrow) {
                *q = (v / sa).round().clamp(-QMAX, QMAX) as i8;
            }
            let orow = out.row_mut(r);
            for (j, o) in orow.iter_mut().enumerate() {
                let wrow = &self.qt[j * self.in_dim..(j + 1) * self.in_dim];
                let t = simd::idot(&xq, wrow);
                *o = t as f64 * (sa * self.scales[j]);
            }
        }
        out
    }

    /// JSON form: `{"rows", "cols", "scales", "q"}` with the codes as a
    /// flat integer array (row `j` of the transposed block at
    /// `q[j*rows .. (j+1)*rows]`).
    pub fn to_json(&self) -> Value {
        Value::obj(vec![
            ("rows", self.in_dim.to_json()),
            ("cols", self.out_dim.to_json()),
            ("scales", self.scales.as_slice().to_json()),
            ("q", self.qt.as_slice().to_json()),
        ])
    }

    /// Parse the [`Self::to_json`] form.
    pub fn from_json(v: &Value) -> Result<QuantWeights, String> {
        let in_dim = v
            .get("rows")
            .and_then(|x| x.as_usize())
            .ok_or("quant: missing rows")?;
        let out_dim = v
            .get("cols")
            .and_then(|x| x.as_usize())
            .ok_or("quant: missing cols")?;
        let scales: Vec<f64> = v
            .get("scales")
            .and_then(|x| x.as_array())
            .ok_or("quant: missing scales")?
            .iter()
            .map(|x| x.as_f64().ok_or("quant: non-numeric scale".to_string()))
            .collect::<Result<_, _>>()?;
        let qt: Vec<i8> = v
            .get("q")
            .and_then(|x| x.as_array())
            .ok_or("quant: missing q")?
            .iter()
            .map(|x| {
                let f = x.as_f64().ok_or("quant: non-numeric code")?;
                // privim-lint: allow(float-eq, reason = "integrality gate on a parsed code: fract() of a true integer is exactly IEEE 0.0, anything else must be rejected, so exact comparison is the correct predicate")
                if f.fract() != 0.0 || !(-128.0..=127.0).contains(&f) {
                    return Err(format!("quant: code {f} out of i8 range"));
                }
                Ok(f as i8)
            })
            .collect::<Result<_, _>>()?;
        if scales.len() != out_dim || qt.len() != in_dim * out_dim {
            return Err(format!(
                "quant: {} scales / {} codes for {in_dim}x{out_dim}",
                scales.len(),
                qt.len()
            ));
        }
        Ok(QuantWeights {
            in_dim,
            out_dim,
            scales,
            qt,
        })
    }
}

/// Dense matrix stored as IEEE-754 binary16 bit patterns (storage-only
/// half precision: decode back to `f64` before compute).
#[derive(Clone, Debug, PartialEq)]
pub struct F16Matrix {
    rows: usize,
    cols: usize,
    bits: Vec<u16>,
}

impl F16Matrix {
    /// Round every entry of `m` to the nearest (ties-to-even) binary16.
    pub fn from_matrix(m: &Matrix) -> F16Matrix {
        F16Matrix {
            rows: m.rows(),
            cols: m.cols(),
            bits: m.data().iter().map(|&x| f16_encode(x)).collect(),
        }
    }

    /// Decode back to a dense `f64` matrix (exact: every binary16 value
    /// is representable in `f64`).
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_vec(
            self.rows,
            self.cols,
            self.bits.iter().map(|&h| f16_decode(h)).collect(),
        )
    }

    /// `(rows, cols)` of the stored matrix.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// JSON form: `{"rows", "cols", "bits"}` (flat `u16` array).
    pub fn to_json(&self) -> Value {
        Value::obj(vec![
            ("rows", self.rows.to_json()),
            ("cols", self.cols.to_json()),
            ("bits", self.bits.as_slice().to_json()),
        ])
    }

    /// Parse the [`Self::to_json`] form.
    pub fn from_json(v: &Value) -> Result<F16Matrix, String> {
        let rows = v
            .get("rows")
            .and_then(|x| x.as_usize())
            .ok_or("f16: missing rows")?;
        let cols = v
            .get("cols")
            .and_then(|x| x.as_usize())
            .ok_or("f16: missing cols")?;
        let bits: Vec<u16> = v
            .get("bits")
            .and_then(|x| x.as_array())
            .ok_or("f16: missing bits")?
            .iter()
            .map(|x| {
                x.as_u64()
                    .filter(|&b| b <= u16::MAX as u64)
                    .map(|b| b as u16)
                    .ok_or("f16: bit pattern out of u16 range".to_string())
            })
            .collect::<Result<_, _>>()?;
        if bits.len() != rows * cols {
            return Err(format!("f16: {} bits for {rows}x{cols}", bits.len()));
        }
        Ok(F16Matrix { rows, cols, bits })
    }
}

/// Encode `f64` → binary16 bit pattern, round-to-nearest-even, with
/// overflow to ±inf and subnormal/zero flushing per IEEE-754.
pub fn f16_encode(x: f64) -> u16 {
    // go through f32 first (`as` rounds to nearest-even); binary16 has
    // strictly less precision, so double rounding cannot change the result
    let bits = (x as f32).to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;
    if exp == 0xff {
        // inf / NaN (keep a quiet-NaN payload bit so NaN stays NaN)
        return sign | 0x7c00 | if man != 0 { 0x0200 } else { 0 };
    }
    let e = exp - 127 + 15;
    if e >= 0x1f {
        return sign | 0x7c00; // overflow → ±inf
    }
    if e <= 0 {
        if e < -10 {
            return sign; // underflows past the smallest subnormal → ±0
        }
        // subnormal: shift the (implicit-bit-restored) mantissa into place
        let man = man | 0x0080_0000;
        let shift = (14 - e) as u32;
        let half = man >> shift;
        let rem = man & ((1u32 << shift) - 1);
        let tie = 1u32 << (shift - 1);
        let rounded = if rem > tie || (rem == tie && half & 1 == 1) {
            half + 1
        } else {
            half
        };
        return sign | rounded as u16;
    }
    let half = ((e as u32) << 10) | (man >> 13);
    let rem = man & 0x1fff;
    let rounded = if rem > 0x1000 || (rem == 0x1000 && half & 1 == 1) {
        half + 1 // a mantissa carry rolls into the exponent correctly
    } else {
        half
    };
    sign | rounded as u16
}

/// Decode a binary16 bit pattern to `f64` (exact).
pub fn f16_decode(h: u16) -> f64 {
    let neg = h & 0x8000 != 0;
    let exp = ((h >> 10) & 0x1f) as i32;
    let man = (h & 0x3ff) as u32;
    let mag = if exp == 0x1f {
        if man != 0 {
            f64::NAN
        } else {
            f64::INFINITY
        }
    } else if exp == 0 {
        man as f64 * (2.0f64).powi(-24) // subnormal (or zero)
    } else {
        (1.0 + man as f64 / 1024.0) * (2.0f64).powi(exp - 15)
    };
    if neg {
        -mag
    } else {
        mag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_matrix(rows: usize, cols: usize, salt: usize) -> Matrix {
        Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|i| ((i * 37 + salt * 11) % 23) as f64 / 7.0 - 1.5)
                .collect(),
        )
    }

    #[test]
    fn dequantize_error_is_within_half_a_step() {
        let w = test_matrix(33, 17, 4);
        let q = QuantWeights::quantize(&w);
        let deq = q.dequantize();
        for j in 0..w.cols() {
            let absmax = (0..w.rows()).fold(0.0f64, |m, i| m.max(w.get(i, j).abs()));
            let bound = absmax / 127.0 * 0.5 + 1e-12;
            for i in 0..w.rows() {
                let err = (deq.get(i, j) - w.get(i, j)).abs();
                assert!(err <= bound, "({i},{j}): err {err} > bound {bound}");
            }
        }
    }

    #[test]
    fn zero_and_single_value_columns_round_trip_exactly() {
        let w = Matrix::from_rows(&[&[0.0, 2.5], &[0.0, -2.5]]);
        let q = QuantWeights::quantize(&w);
        assert_eq!(q.dequantize(), w);
    }

    #[test]
    fn integer_payloads_at_full_scale_are_exact() {
        // absmax exactly 127 per column and per activation row → both
        // scales are exactly 1.0, all codes exact, and the integer path
        // must reproduce the f64 matmul bit-for-bit
        let w = Matrix::from_vec(
            8,
            3,
            (0..24)
                .map(|i| if i < 3 { 127.0 } else { (i as f64 * 31.0) % 127.0 - 63.0 })
                .map(f64::trunc)
                .collect(),
        );
        let mut x = Matrix::from_vec(
            2,
            8,
            (0..16).map(|i| ((i as f64 * 17.0) % 127.0 - 63.0).trunc()).collect(),
        );
        x.set(0, 0, 127.0);
        x.set(1, 0, -127.0);
        let q = QuantWeights::quantize(&w);
        assert_eq!(q.matmul(&x), x.matmul(&w));
    }

    #[test]
    fn quant_matmul_tracks_the_dense_product() {
        let w = test_matrix(32, 16, 1);
        let x = test_matrix(5, 32, 2);
        let got = QuantWeights::quantize(&w).matmul(&x);
        let want = x.matmul(&w);
        let scale = want.max_abs().max(1.0);
        for (g, e) in got.data().iter().zip(want.data()) {
            assert!(
                (g - e).abs() / scale < 0.02,
                "quant drift {g} vs {e} (rel {})",
                (g - e).abs() / scale
            );
        }
    }

    #[test]
    fn quant_matmul_is_backend_invariant() {
        let w = test_matrix(32, 16, 5);
        let x = test_matrix(4, 32, 6);
        let q = QuantWeights::quantize(&w);
        simd::set_backend(Some(simd::Choice::Scalar));
        let scalar = q.matmul(&x);
        simd::set_backend(Some(simd::Choice::Auto));
        let auto = q.matmul(&x);
        simd::set_backend(None);
        for (a, b) in scalar.data().iter().zip(auto.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn quant_json_round_trip_is_exact() {
        let q = QuantWeights::quantize(&test_matrix(9, 4, 7));
        let back = QuantWeights::from_json(&q.to_json()).unwrap();
        assert_eq!(q, back);
        assert!(QuantWeights::from_json(&Value::obj(vec![])).is_err());
    }

    #[test]
    fn f16_round_trips_representable_values() {
        for v in [0.0, -0.0, 1.0, -1.0, 0.5, 2.25, -1024.0, 65504.0, 6.103515625e-5] {
            assert_eq!(f16_decode(f16_encode(v)), v, "{v}");
        }
    }

    #[test]
    fn f16_special_values() {
        assert_eq!(f16_decode(f16_encode(f64::INFINITY)), f64::INFINITY);
        assert_eq!(f16_decode(f16_encode(f64::NEG_INFINITY)), f64::NEG_INFINITY);
        assert!(f16_decode(f16_encode(f64::NAN)).is_nan());
        // beyond the binary16 max (65504) overflows to inf
        assert_eq!(f16_decode(f16_encode(1e6)), f64::INFINITY);
        // tiny values flush through the subnormal range to zero
        assert_eq!(f16_decode(f16_encode(1e-12)), 0.0);
        // smallest subnormal survives
        let tiny = (2.0f64).powi(-24);
        assert_eq!(f16_decode(f16_encode(tiny)), tiny);
    }

    #[test]
    fn f16_rounds_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next binary16
        // (1 + 2^-10); ties-to-even picks the even mantissa (1.0)
        assert_eq!(f16_decode(f16_encode(1.0 + (2.0f64).powi(-11))), 1.0);
        // just above the tie rounds up
        let up = 1.0 + (2.0f64).powi(-11) + (2.0f64).powi(-20);
        assert_eq!(f16_decode(f16_encode(up)), 1.0 + (2.0f64).powi(-10));
    }

    #[test]
    fn f16_matrix_error_bound_and_json_round_trip() {
        let m = test_matrix(11, 6, 8);
        let h = F16Matrix::from_matrix(&m);
        let back = h.to_matrix();
        assert_eq!(back.shape(), m.shape());
        for (a, b) in back.data().iter().zip(m.data()) {
            // binary16 has 11 significand bits → rel err ≤ 2^-11
            assert!((a - b).abs() <= b.abs() * (2.0f64).powi(-11) + 1e-12);
        }
        let rt = F16Matrix::from_json(&h.to_json()).unwrap();
        assert_eq!(rt, h);
        assert!(F16Matrix::from_json(&Value::obj(vec![])).is_err());
    }
}

//! Dataset-calibration integration tests: the synthetic generators must
//! track Table I's statistics (at any scale) and expose the structural
//! families the substitution argument relies on.

use privim_graph::datasets::{measure, Dataset};
use privim_graph::{algo, io};
use privim_rt::ChaCha8Rng;
use privim_rt::SeedableRng;

#[test]
fn all_datasets_match_table1_statistics() {
    for d in Dataset::ALL {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = d.generate_scaled(d.test_scale(), &mut rng);
        let m = measure(d.spec().name, &g);
        let spec = d.spec();
        assert_eq!(m.directed, spec.directed, "{}", spec.name);
        let rel = (m.avg_degree - spec.avg_degree).abs() / spec.avg_degree;
        assert!(
            rel < 0.3,
            "{}: avg degree {} vs paper {} ({:.0}% off)",
            spec.name,
            m.avg_degree,
            spec.avg_degree,
            rel * 100.0
        );
        // expected node count at the test scale
        let want = ((spec.nodes as f64 * d.test_scale()).round() as usize).max(64);
        assert_eq!(m.nodes, want, "{}", spec.name);
    }
}

#[test]
fn degree_distributions_are_heavy_tailed_where_expected() {
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    for d in [Dataset::Bitcoin, Dataset::LastFm, Dataset::Gowalla] {
        let g = d.generate_scaled(d.test_scale(), &mut rng);
        let stats = algo::degree_stats(&g);
        assert!(
            stats.max_in as f64 > 5.0 * stats.mean_total,
            "{}: max in-degree {} vs mean {}",
            d.spec().name,
            stats.max_in,
            stats.mean_total
        );
    }
}

#[test]
fn labels_are_shuffled() {
    // Growth generators put hubs at low ids; the dataset builders must
    // destroy that correlation (index-based tie-breaking otherwise
    // contaminates every experiment).
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let g = Dataset::Gowalla.generate_scaled(0.01, &mut rng);
    let n = g.num_nodes();
    let head: usize = (0..(n / 10) as u32).map(|v| g.out_degree(v)).sum();
    let total: usize = g.nodes().map(|v| g.out_degree(v)).sum();
    let head_share = head as f64 / total as f64;
    assert!(
        head_share < 0.25,
        "first 10% of ids hold {:.0}% of degree — labels not shuffled?",
        head_share * 100.0
    );
}

#[test]
fn edge_list_roundtrip_preserves_pipeline_compatibility() {
    // Real SNAP files must drop in: write a generated dataset as an edge
    // list, re-read it, and check the graphs agree.
    let mut rng = ChaCha8Rng::seed_from_u64(10);
    let g = Dataset::Bitcoin.generate_scaled(0.02, &mut rng);
    let mut buf = Vec::new();
    io::write_edge_list(&g, &mut buf).unwrap();
    let loaded = io::parse_edge_list(std::io::Cursor::new(buf), true).unwrap();
    assert_eq!(loaded.graph.num_arcs(), g.num_arcs());
    let s1 = algo::degree_stats(&g);
    let s2 = algo::degree_stats(&loaded.graph);
    assert_eq!(s1.max_in, s2.max_in);
    assert_eq!(s1.max_out, s2.max_out);
}

#[test]
fn friendster_partition_balances_and_preserves_nodes() {
    use privim_graph::partition::bfs_partition;
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let g = Dataset::Friendster.generate_scaled(Dataset::Friendster.test_scale(), &mut rng);
    for k in [2usize, 4, 8] {
        let p = bfs_partition(&g, k);
        let sizes: Vec<usize> = p.part_nodes().iter().map(|v| v.len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), g.num_nodes());
        let max = *sizes.iter().max().unwrap();
        assert!(max <= g.num_nodes().div_ceil(k), "k={k}: part size {max}");
        assert!(p.cut_fraction(&g) < 0.9, "k={k}");
    }
}

//! Privacy-invariant integration tests: the occurrence bounds the DP
//! analysis rests on must hold for every sampler across random graphs, and
//! the accountant must behave monotonically.

use privim_dp::accountant::{best_epsilon, calibrate_sigma, PrivacyParams};
use privim_dp::sensitivity::{naive_occurrence_bound, sampled_occurrence_bound};
use privim_graph::{generators, projection::theta_projection};
use privim_rt::{ChaCha8Rng, Rng, SeedableRng};
use privim_sampling::{
    dual_stage_sampling, extract_subgraphs, DualStageConfig, FreqConfig, RwrConfig,
};

/// Lemma 1's invariant: Algorithm 1 on a θ-bounded graph never lets a
/// node occur more than N_g = Σθ^i times — on arbitrary BA graphs,
/// θ values and subgraph sizes. Deterministic property test: 6 sampled
/// (seed, theta, n_sub) cases.
#[test]
fn algorithm1_occurrence_bound() {
    let mut meta = ChaCha8Rng::seed_from_u64(0xA160);
    for _ in 0..6 {
        let seed = meta.gen_range(0u64..10_000);
        let theta = meta.gen_range(2usize..6);
        let n_sub = meta.gen_range(5usize..15);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::barabasi_albert(200, 4, &mut rng);
        let projected = theta_projection(&g, theta, &mut rng);
        let hops = 2;
        let cfg = RwrConfig {
            subgraph_size: n_sub,
            return_prob: 0.3,
            sampling_rate: 1.0,
            walk_len: 100,
            hops,
        };
        let c = extract_subgraphs(&projected, &cfg, &mut rng);
        let bound = naive_occurrence_bound(theta as u64, hops as u32);
        assert!(
            (c.max_occurrence() as u64) <= bound,
            "seed {seed}: max {} > N_g {bound}",
            c.max_occurrence()
        );
    }
}

/// §IV-D's invariant: the dual-stage scheme keeps every node's
/// occurrence at most M across BOTH stages. Deterministic property test:
/// 6 sampled (seed, m) cases.
#[test]
fn dual_stage_occurrence_bound() {
    let mut meta = ChaCha8Rng::seed_from_u64(0xD0A2);
    for _ in 0..6 {
        let seed = meta.gen_range(0u64..10_000);
        let m = meta.gen_range(1u32..6);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::holme_kim(250, 4.0, 0.5, &mut rng);
        let cfg = DualStageConfig {
            stage1: FreqConfig {
                subgraph_size: 12,
                return_prob: 0.3,
                decay: 1.0,
                sampling_rate: 1.0,
                walk_len: 120,
                threshold: m,
            },
            shrink: 2,
            enable_bes: true,
        };
        let out = dual_stage_sampling(&g, &cfg, &mut rng).unwrap();
        assert!(out.container.max_occurrence() <= m, "seed {seed} m {m}");
    }
}

/// The refined bound is always between 1 and the worst case, and the
/// accountant's ε is monotone in σ (more noise never costs more budget).
/// Deterministic property test: 6 sampled (q, sigma) cases.
#[test]
fn accounting_monotonicity() {
    let mut meta = ChaCha8Rng::seed_from_u64(0xACC0);
    for _ in 0..6 {
        let q = meta.gen_range(0.01f64..0.9);
        let sigma = meta.gen_range(0.3f64..4.0);
        let refined = sampled_occurrence_bound(10, 3, q, 1e-6);
        assert!(refined >= 1 && refined <= 1111);
        let params = PrivacyParams {
            n_g: 8,
            batch: 16,
            container: 200,
            steps: 40,
        };
        let e1 = best_epsilon(sigma, 1e-5, &params);
        let e2 = best_epsilon(sigma * 1.5, 1e-5, &params);
        assert!(
            e2 <= e1 + 1e-9,
            "eps not monotone at sigma {sigma}: {e1} -> {e2}"
        );
    }
}

#[test]
fn calibration_respects_budget_across_settings() {
    for (n_g, container) in [(4u64, 300u64), (11, 1900), (145, 256), (256, 256)] {
        for eps in [1.0, 3.0, 6.0] {
            let p = PrivacyParams {
                n_g,
                batch: 32,
                container,
                steps: 80,
            };
            let sigma = calibrate_sigma(eps, 1e-4, &p);
            let achieved = best_epsilon(sigma, 1e-4, &p);
            assert!(
                achieved <= eps + 1e-9,
                "n_g={n_g}, m={container}, eps={eps}: achieved {achieved}"
            );
        }
    }
}

#[test]
fn container_accounting_matches_frequencies() {
    // The container's occurrence counters are the quantity the proofs
    // bound; they must agree with the sampler's frequency vector exactly.
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let g = generators::barabasi_albert(300, 4, &mut rng);
    let cfg = DualStageConfig {
        stage1: FreqConfig {
            subgraph_size: 15,
            return_prob: 0.3,
            decay: 1.0,
            sampling_rate: 0.8,
            walk_len: 150,
            threshold: 5,
        },
        shrink: 2,
        enable_bes: true,
    };
    let out = dual_stage_sampling(&g, &cfg, &mut rng).unwrap();
    for v in g.nodes() {
        assert_eq!(
            out.container.occurrence(v),
            out.frequencies[v as usize],
            "node {v}"
        );
    }
}

//! Qualitative reproduction tests: the *shapes* the paper's evaluation
//! establishes must hold on small instances — who wins, roughly by what
//! factor, and which way the trends point.

use privim::pipeline::{run_method, EvalSetup, Method, PipelineParams};
use privim_graph::datasets::Dataset;
use privim_im::metrics::mean_std;
use privim_rt::ChaCha8Rng;
use privim_rt::SeedableRng;
use privim_sampling::{Indicator, IndicatorParams};

fn params(n: usize) -> PipelineParams {
    let mut p = PipelineParams::paper_defaults(n);
    p.iters = 40;
    p.batch = 16;
    p.hidden = 16;
    p.subgraph_size = 16;
    p.walk_len = 120;
    p
}

fn avg_coverage(method: Method, setup: &EvalSetup<'_>, reps: u64) -> f64 {
    let vals: Vec<f64> = (0..reps)
        .map(|r| run_method(method, setup, 100 + r).unwrap().coverage_ratio)
        .collect();
    mean_std(&vals).0
}

/// Figure 5's headline: Non-Private ≈ CELF, and at a generous budget
/// PrivIM* sits far above the naive pipeline and EGN.
#[test]
fn figure5_ordering_on_lastfm() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let g = Dataset::LastFm.generate_scaled(0.15, &mut rng);
    let setup = EvalSetup::with_params(&g, 20, params(g.num_nodes()), &mut rng);

    let non_private = avg_coverage(Method::NonPrivate, &setup, 2);
    assert!(
        non_private > 90.0,
        "non-private should approach CELF: {non_private}"
    );

    let star = avg_coverage(Method::PrivImStar { epsilon: 4.0 }, &setup, 3);
    let naive = avg_coverage(Method::PrivIm { epsilon: 4.0 }, &setup, 3);
    let egn = avg_coverage(Method::Egn { epsilon: 4.0 }, &setup, 3);
    assert!(
        star > naive + 10.0,
        "PrivIM* {star} should clearly beat naive {naive}"
    );
    assert!(star > egn, "PrivIM* {star} vs EGN {egn}");
}

/// Table II's ablation direction: adding SCS to the naive pipeline helps,
/// and PrivIM* (SCS+BES) does not fall below SCS alone.
#[test]
fn table2_ablation_direction() {
    let mut rng = ChaCha8Rng::seed_from_u64(12);
    let g = Dataset::Facebook.generate_scaled(0.04, &mut rng);
    let setup = EvalSetup::with_params(&g, 20, params(g.num_nodes()), &mut rng);
    let eps = 4.0;
    let naive = avg_coverage(Method::PrivIm { epsilon: eps }, &setup, 3);
    let scs = avg_coverage(Method::PrivImScs { epsilon: eps }, &setup, 3);
    let star = avg_coverage(Method::PrivImStar { epsilon: eps }, &setup, 3);
    assert!(scs > naive, "SCS {scs} should beat naive {naive}");
    assert!(
        star >= scs - 5.0,
        "BES must not regress materially: {star} vs {scs}"
    );
}

/// The sensitivity mechanics behind every gap: at equal ε, effective noise
/// σ·N_g is an order of magnitude larger for naive than dual-stage, and
/// larger still for EGN.
#[test]
fn effective_noise_ordering() {
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let g = Dataset::LastFm.generate_scaled(0.1, &mut rng);
    let setup = EvalSetup::with_params(&g, 10, params(g.num_nodes()), &mut rng);
    let eps = 2.0;
    let star = run_method(Method::PrivImStar { epsilon: eps }, &setup, 1).unwrap();
    let naive = run_method(Method::PrivIm { epsilon: eps }, &setup, 1).unwrap();
    let egn = run_method(Method::Egn { epsilon: eps }, &setup, 1).unwrap();
    let noise = |o: &privim::MethodOutput| o.sigma * o.occurrence_bound as f64;
    assert!(
        noise(&naive) > 3.0 * noise(&star),
        "naive {} vs star {}",
        noise(&naive),
        noise(&star)
    );
    assert!(
        noise(&egn) > noise(&star),
        "egn {} vs star {}",
        noise(&egn),
        noise(&star)
    );
}

/// §V-B: the privacy-utility gap widens as ε shrinks — PrivIM* at a tight
/// budget must not beat itself at a loose budget (within noise).
#[test]
fn utility_monotone_in_epsilon() {
    let mut rng = ChaCha8Rng::seed_from_u64(14);
    let g = Dataset::LastFm.generate_scaled(0.15, &mut rng);
    let mut p = params(g.num_nodes());
    p.batch = 8; // smaller batch = stronger noise response for the test
    let setup = EvalSetup::with_params(&g, 20, p, &mut rng);
    let tight = avg_coverage(Method::PrivImStar { epsilon: 0.5 }, &setup, 4);
    let loose = avg_coverage(Method::PrivImStar { epsilon: 6.0 }, &setup, 4);
    assert!(
        loose + 5.0 >= tight,
        "coverage should not degrade with more budget: ε=0.5 → {tight}, ε=6 → {loose}"
    );
}

/// §V-D: the indicator's argmax is a sensible configuration — it must lie
/// strictly inside the candidate grids for mid-sized datasets (unimodal,
/// not a boundary artefact).
#[test]
fn indicator_picks_interior_optimum() {
    let ind = Indicator::for_dataset(IndicatorParams::paper_values(), 12_000);
    let n_grid = [10usize, 20, 30, 40, 50, 60, 70, 80];
    let m_grid = [2u32, 3, 4, 6, 8, 10, 12];
    let (n, m) = ind.best_parameters(&n_grid, &m_grid);
    assert!(n > 10 && n < 80, "n* = {n} on the boundary");
    assert!(m > 2 && m < 12, "M* = {m} on the boundary");
}

/// Fig. 9's premise: every one of the five GNN architectures trains to a
/// usable model inside PrivIM* (none collapses to random).
#[test]
fn every_gnn_architecture_works_in_pipeline() {
    use privim_gnn::GnnKind;
    let mut rng = ChaCha8Rng::seed_from_u64(15);
    let g = Dataset::LastFm.generate_scaled(0.15, &mut rng);
    let setup = EvalSetup::with_params(&g, 20, params(g.num_nodes()), &mut rng);
    let random = avg_coverage(Method::Random, &setup, 4);
    for kind in GnnKind::ALL {
        let cov = avg_coverage(Method::PrivImStarWith { epsilon: 5.0, kind }, &setup, 2);
        assert!(
            cov > random,
            "{}: coverage {cov} not above random {random}",
            kind.name()
        );
    }
}

//! Determinism regression tests: the same seed must produce bit-identical
//! results regardless of the worker-thread count — and, since the SIMD
//! layer landed, regardless of the `PRIVIM_SIMD` backend. The runtime's
//! parallel primitives chunk contiguously, every Monte-Carlo loop seeds
//! its RNG per item, and every SIMD kernel follows the fixed 4-lane
//! accumulator contract (DESIGN.md §14), so neither thread scheduling nor
//! register width can reorder a single floating-point operation.

use privim::pipeline::{run_method, EvalSetup, Method, PipelineParams};
use privim::trainer::{train_dpgnn, DpSgdConfig, TrainItem};
use privim_gnn::{GnnConfig, GnnKind, GnnModel};
use privim_graph::{generators, induced_subgraph};
use privim_im::ic_spread_estimate;
use privim_rt::{ChaCha8Rng, Rng, SeedableRng};
use privim_sampling::{freq_sampling, FreqConfig};
use privim_tensor::{simd, Matrix, SparseMatrix};
use std::sync::Mutex;

/// Tests in this file flip the process-global thread override and must not
/// interleave.
static THREADS_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    privim_rt::par::set_threads(n);
    let out = f();
    privim_rt::par::set_threads(0); // back to the environment default
    out
}

/// Pin the SIMD backend and thread count for the duration of `f`, then
/// restore both to their environment defaults.
fn with_backend_and_threads<T>(
    choice: simd::Choice,
    threads: usize,
    f: impl FnOnce() -> T,
) -> T {
    simd::set_backend(Some(choice));
    let out = with_threads(threads, f);
    simd::set_backend(None);
    out
}

#[test]
fn training_trajectory_identical_across_thread_counts() {
    let _guard = THREADS_LOCK.lock().unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let g = generators::barabasi_albert(250, 4, &mut rng).with_uniform_weights(1.0);
    let mut freq = vec![0u32; g.num_nodes()];
    let cfg = FreqConfig {
        subgraph_size: 12,
        return_prob: 0.3,
        decay: 1.0,
        sampling_rate: 1.0,
        walk_len: 120,
        threshold: 6,
    };
    let sets = freq_sampling(&g, &mut freq, &cfg, &mut rng).unwrap();
    let subs: Vec<_> = sets.iter().map(|s| induced_subgraph(&g, s)).collect();

    let train_cfg = DpSgdConfig::paper_default(0.8, 6);
    let run = |threads: usize| {
        with_threads(threads, || {
            let items = TrainItem::from_container(&subs);
            let mut model = GnnModel::new(
                GnnConfig {
                    kind: GnnKind::Grat,
                    layers: 2,
                    hidden: 8,
                    in_dim: privim_gnn::FEATURE_DIM,
                },
                &mut ChaCha8Rng::seed_from_u64(7),
            );
            let report = train_dpgnn(&mut model, &items, &train_cfg).unwrap();
            (report.loss_trace, model.params().to_vec())
        })
    };

    let (trace1, params1) = run(1);
    for threads in [2, 4, 8] {
        let (trace_n, params_n) = run(threads);
        assert_eq!(
            trace1, trace_n,
            "loss trajectory diverged at {threads} threads"
        );
        assert_eq!(
            params1, params_n,
            "parameters diverged at {threads} threads"
        );
    }
}

#[test]
fn pipeline_seed_set_identical_across_thread_counts() {
    let _guard = THREADS_LOCK.lock().unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let g = generators::barabasi_albert(300, 4, &mut rng).with_uniform_weights(1.0);
    let mut params = PipelineParams::paper_defaults(g.num_nodes());
    params.iters = 10;
    params.batch = 8;
    params.hidden = 16;
    let setup = EvalSetup::with_params(&g, 10, params, &mut ChaCha8Rng::seed_from_u64(5));

    let run = |threads: usize| {
        with_threads(threads, || {
            run_method(Method::PrivImStar { epsilon: 3.0 }, &setup, 0).unwrap()
        })
    };
    let base = run(1);
    for threads in [2, 4] {
        let out = run(threads);
        assert_eq!(
            base.seeds, out.seeds,
            "seed set diverged at {threads} threads"
        );
        assert_eq!(
            base.final_loss.to_bits(),
            out.final_loss.to_bits(),
            "final loss diverged at {threads} threads"
        );
        assert_eq!(base.spread, out.spread);
        assert_eq!(base.sigma, out.sigma);
    }
}

#[test]
fn monte_carlo_estimates_identical_across_thread_counts() {
    let _guard = THREADS_LOCK.lock().unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let g = generators::barabasi_albert(150, 3, &mut rng).with_weighted_cascade();
    let seeds = [0u32, 3, 9];
    let base = with_threads(1, || ic_spread_estimate(&g, &seeds, None, 500, 21));
    for threads in [2, 4, 8] {
        let est = with_threads(threads, || ic_spread_estimate(&g, &seeds, None, 500, 21));
        assert_eq!(
            base.to_bits(),
            est.to_bits(),
            "MC estimate diverged at {threads} threads"
        );
    }
}

fn random_matrix(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.gen::<f64>() - 0.5).collect(),
    )
}

fn assert_bits_eq(name: &str, threads: usize, a: &Matrix, b: &Matrix) {
    assert_eq!(a.shape(), b.shape());
    for (x, y) in a.data().iter().zip(b.data()) {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{name} diverged at {threads} threads: {x:?} vs {y:?}"
        );
    }
}

#[test]
fn tensor_kernels_bit_identical_across_thread_counts() {
    let _guard = THREADS_LOCK.lock().unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    // Big enough that every kernel crosses its parallel-dispatch threshold.
    let a = random_matrix(70, 64, &mut rng);
    let b = random_matrix(64, 55, &mut rng);
    let g = generators::barabasi_albert(2000, 4, &mut rng).with_uniform_weights(0.5);
    let adj = SparseMatrix::from_triplets(
        2000,
        2000,
        (0..2000u32).flat_map(|u| {
            g.out_neighbors(u)
                .iter()
                .map(move |&v| (u as usize, v as usize, 0.5))
        }),
    );
    let h = random_matrix(2000, 40, &mut rng);

    let base = with_threads(1, || {
        (
            a.matmul(&b),
            a.transpose(),
            adj.spmm(&h),
            adj.spmm_transpose(&h),
        )
    });
    for threads in [2, 7] {
        let (mm, tr, sp, spt) = with_threads(threads, || {
            (
                a.matmul(&b),
                a.transpose(),
                adj.spmm(&h),
                adj.spmm_transpose(&h),
            )
        });
        assert_bits_eq("matmul", threads, &base.0, &mm);
        assert_bits_eq("transpose", threads, &base.1, &tr);
        assert_bits_eq("spmm", threads, &base.2, &sp);
        assert_bits_eq("spmm_transpose", threads, &base.3, &spt);
    }
}

#[test]
fn single_trainer_step_bit_identical_across_thread_counts() {
    let _guard = THREADS_LOCK.lock().unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(57);
    let g = generators::barabasi_albert(200, 4, &mut rng).with_uniform_weights(1.0);
    let mut freq = vec![0u32; g.num_nodes()];
    let cfg = FreqConfig {
        subgraph_size: 12,
        return_prob: 0.3,
        decay: 1.0,
        sampling_rate: 1.0,
        walk_len: 120,
        threshold: 6,
    };
    let sets = freq_sampling(&g, &mut freq, &cfg, &mut rng).unwrap();
    let subs: Vec<_> = sets.iter().map(|s| induced_subgraph(&g, s)).collect();
    let train_cfg = DpSgdConfig {
        iters: 1,
        ..DpSgdConfig::paper_default(0.8, 6)
    };
    let step = |threads: usize| {
        with_threads(threads, || {
            let items = TrainItem::from_container(&subs);
            let mut model = GnnModel::new(
                GnnConfig {
                    kind: GnnKind::Gcn,
                    layers: 2,
                    hidden: 8,
                    in_dim: privim_gnn::FEATURE_DIM,
                },
                &mut ChaCha8Rng::seed_from_u64(3),
            );
            train_dpgnn(&mut model, &items, &train_cfg).unwrap();
            model.params().to_vec()
        })
    };
    let base = step(1);
    for threads in [2, 7] {
        let params = step(threads);
        assert_eq!(base, params, "trainer step diverged at {threads} threads");
    }
}

#[test]
fn pool_survives_thread_count_changes_mid_process() {
    let _guard = THREADS_LOCK.lock().unwrap();
    // Ratchet the override up and down repeatedly; the persistent pool must
    // keep serving correct (and identical) results through every change.
    let items: Vec<u64> = (0..500).collect();
    let expect: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
    for &threads in &[1, 5, 2, 9, 1, 3, 7, 2] {
        let out = with_threads(threads, || privim_rt::par::map(&items, |&x| x * 3 + 1));
        assert_eq!(out, expect, "pool broke after switching to {threads} threads");
    }
}

#[test]
fn par_primitives_preserve_order_at_any_width() {
    let _guard = THREADS_LOCK.lock().unwrap();
    let items: Vec<u64> = (0..1000).collect();
    let base = with_threads(1, || privim_rt::par::map(&items, |&x| x * x));
    for threads in [2, 3, 7, 16] {
        let out = with_threads(threads, || privim_rt::par::map(&items, |&x| x * x));
        assert_eq!(base, out, "map order diverged at {threads} threads");
        let sum = with_threads(threads, || privim_rt::par::sum_range(1000, |i| i as u64));
        assert_eq!(sum, 999 * 1000 / 2);
    }
}

#[test]
fn bfs_partition_assigns_every_node_exactly_once_at_any_width() {
    let _guard = THREADS_LOCK.lock().unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let g = generators::barabasi_albert(400, 4, &mut rng).with_uniform_weights(1.0);
    let base = with_threads(1, || privim_graph::partition::bfs_partition(&g, 7));
    // totality + exactly-once: every node carries exactly one real part id,
    // and the per-part node lists cover each node once.
    assert_eq!(base.part_of.len(), g.num_nodes());
    assert!(base.part_of.iter().all(|&p| p < base.num_parts));
    let mut seen = vec![0u32; g.num_nodes()];
    for part in base.part_nodes() {
        for &v in &part {
            seen[v as usize] += 1;
        }
    }
    assert!(seen.iter().all(|&c| c == 1), "a node was dropped or double-assigned");
    // bit-identical partitions regardless of the worker-thread override
    for threads in [2, 4, 7, 8] {
        let p = with_threads(threads, || privim_graph::partition::bfs_partition(&g, 7));
        assert_eq!(p.part_of, base.part_of, "partition diverged at {threads} threads");
    }
}

#[test]
fn partition_shard_merge_preserves_the_edge_multiset() {
    let _guard = THREADS_LOCK.lock().unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(78);
    let g = generators::barabasi_albert(300, 3, &mut rng).with_uniform_weights(1.0);
    let p = privim_graph::partition::bfs_partition(&g, 5);
    let shards = privim_graph::partition::partition_subgraphs(&g, &p);

    // Map every shard arc back to parent ids and merge; the multiset must
    // be exactly the parent arcs whose endpoints share a part (weights
    // compared by bit pattern — no tolerance).
    let mut merged: Vec<(u32, u32, u64)> = shards
        .iter()
        .flat_map(|s| {
            s.graph
                .arcs()
                .map(|(u, v, w)| (s.original[u as usize], s.original[v as usize], w.to_bits()))
                .collect::<Vec<_>>()
        })
        .collect();
    merged.sort_unstable();
    let mut intra: Vec<(u32, u32, u64)> = g
        .arcs()
        .filter(|&(u, v, _)| p.part_of[u as usize] == p.part_of[v as usize])
        .map(|(u, v, w)| (u, v, w.to_bits()))
        .collect();
    intra.sort_unstable();
    assert_eq!(merged, intra, "shard merge lost or duplicated arcs");
    // intra + cut partitions the arc set
    let cut = g
        .arcs()
        .filter(|&(u, v, _)| p.part_of[u as usize] != p.part_of[v as usize])
        .count();
    assert_eq!(intra.len() + cut, g.num_arcs());

    // The materialised shards are bit-identical across thread counts too.
    let base_arcs: Vec<Vec<(u32, u32, u64)>> = shards
        .iter()
        .map(|s| s.graph.arcs().map(|(u, v, w)| (u, v, w.to_bits())).collect())
        .collect();
    for threads in [2, 8] {
        let again = with_threads(threads, || {
            let p = privim_graph::partition::bfs_partition(&g, 5);
            privim_graph::partition::partition_subgraphs(&g, &p)
        });
        let arcs: Vec<Vec<(u32, u32, u64)>> = again
            .iter()
            .map(|s| s.graph.arcs().map(|(u, v, w)| (u, v, w.to_bits())).collect())
            .collect();
        assert_eq!(arcs, base_arcs, "shards diverged at {threads} threads");
    }
}

/// The recovery-replay contract (DESIGN.md §13): the recovered ledger is
/// a pure function of the journal bytes. The same bytes — including a
/// CRC-corrupted record (kept, ambiguous) and a torn tail (dropped) —
/// must replay to a bit-identical ledger and identical replay stats at
/// every thread count, so two replicas recovering the same journal can
/// never disagree on a tenant's spend.
#[test]
fn wal_replay_bit_identical_across_thread_counts() {
    let _guard = THREADS_LOCK.lock().unwrap();
    use privim_serve::wal;

    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let mut journal = Vec::new();
    let mut counts = std::collections::BTreeMap::<String, u64>::new();
    for _ in 0..40 {
        let t = format!("tenant-{}", rng.gen::<u64>() % 5);
        let q = counts.entry(t.clone()).or_insert(0);
        *q += 1 + rng.gen::<u64>() % 3;
        let q = *q;
        wal::append_record(&mut journal, &t, q).unwrap();
    }
    // One mid-journal CRC flip (ambiguous record: kept) and a torn tail
    // (dropped) — the stress cases recovery must still be pure over.
    let flip_at = journal.len() / 2 / 4 * 4 + 4;
    journal[flip_at] ^= 0xA5;
    let tail_record = {
        let mut b = Vec::new();
        wal::append_record(&mut b, "tenant-torn", 99).unwrap();
        b
    };
    journal.extend_from_slice(&tail_record[..tail_record.len() - 3]);

    let (base_map, base_stats) = with_threads(1, || wal::replay(&journal));
    assert!(base_stats.records_applied >= 39, "corruption must cost at most the flipped record");
    assert!(base_stats.torn_tail_bytes > 0, "the torn tail must be detected");
    for threads in [2, 4, 7] {
        let (map, stats) = with_threads(threads, || wal::replay(&journal));
        assert_eq!(map, base_map, "replay diverged at {threads} threads");
        assert_eq!(stats, base_stats, "replay stats diverged at {threads} threads");
    }
    // And byte-for-byte repetition at the same thread count is identical
    // too — replay holds no hidden state.
    let (again, stats_again) = with_threads(1, || wal::replay(&journal));
    assert_eq!(again, base_map);
    assert_eq!(stats_again, base_stats);
}

// ---------------------------------------------------------------------------
// SIMD backend sweep (DESIGN.md §14): everything below must be
// bit-identical between the forced scalar backend and the auto-resolved
// widest backend, at 1, 2 and 7 worker threads. `Auto` is forced through
// `set_backend` so the sweep is genuine even when the suite itself runs
// under `PRIVIM_SIMD=scalar` (the CI scalar leg).

#[test]
fn kernels_bit_identical_across_simd_backends_and_thread_counts() {
    let _guard = THREADS_LOCK.lock().unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(101);
    let a = random_matrix(70, 64, &mut rng);
    let b = random_matrix(64, 55, &mut rng);
    let g = generators::barabasi_albert(1500, 4, &mut rng).with_uniform_weights(0.5);
    let adj = SparseMatrix::from_triplets(
        1500,
        1500,
        (0..1500u32).flat_map(|u| {
            g.out_neighbors(u)
                .iter()
                .map(move |&v| (u as usize, v as usize, 0.5))
        }),
    );
    let h = random_matrix(1500, 40, &mut rng);
    // Odd length: the sequential scalar tail after the 4-lane body must
    // agree across backends too.
    let v = random_matrix(1, 1003, &mut rng);
    let w = random_matrix(1, 1003, &mut rng);

    let run = |choice: simd::Choice, threads: usize| {
        with_backend_and_threads(choice, threads, || {
            (
                a.matmul(&b),
                adj.spmm(&h),
                simd::dot(v.data(), w.data()).to_bits(),
                simd::sum(v.data()).to_bits(),
                simd::sumsq(v.data()).to_bits(),
            )
        })
    };
    let base = run(simd::Choice::Scalar, 1);
    for choice in [simd::Choice::Scalar, simd::Choice::Auto] {
        for threads in [1, 2, 7] {
            let out = run(choice, threads);
            assert_bits_eq("matmul", threads, &base.0, &out.0);
            assert_bits_eq("spmm", threads, &base.1, &out.1);
            assert_eq!(base.2, out.2, "dot diverged ({choice:?}, {threads} threads)");
            assert_eq!(base.3, out.3, "sum diverged ({choice:?}, {threads} threads)");
            assert_eq!(base.4, out.4, "sumsq diverged ({choice:?}, {threads} threads)");
        }
    }
}

#[test]
fn full_trainer_step_bit_identical_across_simd_backends() {
    let _guard = THREADS_LOCK.lock().unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(58);
    let g = generators::barabasi_albert(200, 4, &mut rng).with_uniform_weights(1.0);
    let mut freq = vec![0u32; g.num_nodes()];
    let cfg = FreqConfig {
        subgraph_size: 12,
        return_prob: 0.3,
        decay: 1.0,
        sampling_rate: 1.0,
        walk_len: 120,
        threshold: 6,
    };
    let sets = freq_sampling(&g, &mut freq, &cfg, &mut rng).unwrap();
    let subs: Vec<_> = sets.iter().map(|s| induced_subgraph(&g, s)).collect();
    let train_cfg = DpSgdConfig {
        iters: 1,
        ..DpSgdConfig::paper_default(0.8, 6)
    };
    let step = |choice: simd::Choice, threads: usize| {
        with_backend_and_threads(choice, threads, || {
            let items = TrainItem::from_container(&subs);
            let mut model = GnnModel::new(
                GnnConfig {
                    kind: GnnKind::Grat,
                    layers: 2,
                    hidden: 8,
                    in_dim: privim_gnn::FEATURE_DIM,
                },
                &mut ChaCha8Rng::seed_from_u64(3),
            );
            let report = train_dpgnn(&mut model, &items, &train_cfg).unwrap();
            (report.loss_trace, model.params().to_vec())
        })
    };
    let base = step(simd::Choice::Scalar, 1);
    for choice in [simd::Choice::Scalar, simd::Choice::Auto] {
        for threads in [1, 2, 7] {
            let out = step(choice, threads);
            assert_eq!(
                base.0, out.0,
                "loss diverged ({choice:?}, {threads} threads)"
            );
            assert_eq!(
                base.1, out.1,
                "post-step parameters diverged ({choice:?}, {threads} threads)"
            );
        }
    }
}

/// The end-to-end form of the contract: a served `/v1/embed` response —
/// the bytes on the wire — must not depend on the SIMD backend that
/// computed it.
#[test]
fn served_embed_response_byte_identical_across_simd_backends() {
    let _guard = THREADS_LOCK.lock().unwrap();
    use privim_serve::{bundle, start, ServeConfig};
    use std::io::{Read, Write};

    let mut rng = ChaCha8Rng::seed_from_u64(202);
    let g = generators::barabasi_albert(120, 3, &mut rng).with_uniform_weights(1.0);
    let artifact = privim::ServeArtifact {
        model: GnnModel::new(privim_gnn::GnnConfig::paper_default(), &mut rng),
        epsilon: Some(2.0),
        delta: 1e-4,
        sigma: 1.5,
        steps: 80,
    };
    let mut packed = Vec::new();
    bundle::save(&artifact, &g, &mut packed).unwrap();

    let body_under = |choice: simd::Choice| {
        simd::set_backend(Some(choice));
        let b = bundle::load(packed.as_slice()).unwrap();
        let handle = start(b, ServeConfig::default()).unwrap();
        let port = handle.port();
        let mut stream = std::net::TcpStream::connect(("127.0.0.1", port)).unwrap();
        let body = "{\"nodes\": [0, 7, 63, 119]}";
        let raw = format!(
            "POST /v1/embed HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(raw.as_bytes()).unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        handle.shutdown();
        simd::set_backend(None);
        let (_, response_body) = text.split_once("\r\n\r\n").unwrap();
        assert!(response_body.contains("scores"), "unexpected response: {text}");
        response_body.to_string()
    };
    let scalar = body_under(simd::Choice::Scalar);
    let auto = body_under(simd::Choice::Auto);
    assert_eq!(
        scalar, auto,
        "served /v1/embed bytes diverged between scalar and auto backends"
    );
}

/// Quantization round-trip error bounds through the public API: int8
/// dequantization stays within half a quantization step per element, f16
/// re-encoding is the identity, and the quantized model's served
/// probabilities track the dense model closely.
#[test]
fn quantization_round_trip_errors_are_bounded() {
    let mut rng = ChaCha8Rng::seed_from_u64(909);
    let w = random_matrix(24, 17, &mut rng);
    let q = privim_tensor::QuantWeights::quantize(&w);
    let d = q.dequantize();
    for j in 0..w.cols() {
        let absmax = (0..w.rows()).map(|i| w.get(i, j).abs()).fold(0.0, f64::max);
        let half_step = absmax / 127.0 / 2.0;
        for i in 0..w.rows() {
            let err = (w.get(i, j) - d.get(i, j)).abs();
            assert!(
                err <= half_step * (1.0 + 1e-12),
                "col {j} row {i}: err {err} exceeds half-step {half_step}"
            );
        }
    }
    // f16 storage: decoding is exact, so re-encoding any finite or
    // infinite binary16 value reproduces it bit-for-bit (this is what
    // makes f16 bundle compaction lossless).
    for h in [0u16, 1, 0x0400, 0x3C00, 0x7BFF, 0x8001, 0xBC00, 0x7C00, 0xFC00] {
        assert_eq!(
            privim_tensor::quant::f16_encode(privim_tensor::quant::f16_decode(h)),
            h,
            "f16 re-encode not identity for {h:#06x}"
        );
    }
    // Model level: int8 inference tracks dense inference within a small
    // probability drift (scores are sigmoid outputs in [0, 1]).
    let g = generators::barabasi_albert(80, 3, &mut rng).with_uniform_weights(1.0);
    let model = GnnModel::new(privim_gnn::GnnConfig::paper_default(), &mut rng);
    let dense = model.score_graph(&g);
    let quant = privim_gnn::QuantGnnModel::from_model(&model).score_graph(&g);
    for (n, (a, b)) in dense.iter().zip(&quant).enumerate() {
        assert!(
            (a - b).abs() < 0.05,
            "node {n}: quantized probability drifted {} from dense",
            (a - b).abs()
        );
    }
}

//! Fault-tolerance integration tests: divergence recovery under injected
//! faults, graceful degradation on degenerate inputs, and crash-safe
//! atomic result writes.
//!
//! The fault plans are parameterised by `PRIVIM_FAULT_SEED` (default 7) so
//! CI can sweep a seed matrix: every assertion here must hold for *any*
//! seed, not one lucky draw.

use privim::trainer::{train_dpgnn, DpSgdConfig, TrainItem};
use privim_dp::accountant::{best_epsilon, PrivacyParams};
use privim_gnn::{GnnConfig, GnnKind, GnnModel};
use privim_graph::{generators, induced_subgraph, Graph};
use privim_rt::fault::{FaultPlan, FaultPoint};
use privim_rt::{ChaCha8Rng, PrivimError, SeedableRng};
use privim_sampling::{dual_stage_sampling, freq_sampling, DualStageConfig, FreqConfig};

/// The fault seed under test — CI sweeps this over a small matrix.
fn fault_seed() -> u64 {
    std::env::var("PRIVIM_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

fn freq_cfg() -> FreqConfig {
    FreqConfig {
        subgraph_size: 10,
        return_prob: 0.3,
        decay: 1.0,
        sampling_rate: 1.0,
        walk_len: 120,
        threshold: 6,
    }
}

fn make_items(graph_seed: u64) -> Vec<TrainItem> {
    let mut rng = ChaCha8Rng::seed_from_u64(graph_seed);
    let g = generators::barabasi_albert(200, 4, &mut rng).with_uniform_weights(1.0);
    let mut freq = vec![0u32; g.num_nodes()];
    let sets = freq_sampling(&g, &mut freq, &freq_cfg(), &mut rng).unwrap();
    let subs: Vec<_> = sets.iter().map(|s| induced_subgraph(&g, s)).collect();
    TrainItem::from_container(&subs)
}

fn small_model(seed: u64) -> GnnModel {
    GnnModel::new(
        GnnConfig {
            kind: GnnKind::Gcn,
            layers: 2,
            hidden: 8,
            in_dim: privim_gnn::FEATURE_DIM,
        },
        &mut ChaCha8Rng::seed_from_u64(seed),
    )
}

fn train_cfg(fault: Option<FaultPlan>) -> DpSgdConfig {
    DpSgdConfig {
        batch: 8,
        iters: 30,
        lr: 0.05,
        sigma: 1.2,
        occurrence_bound: 6,
        seed: 17,
        fault,
        ..DpSgdConfig::paper_default(1.2, 6)
    }
}

// ---------------------------------------------------------------------------
// Divergence sentinel: recovery must not distort the privacy accounting.
// ---------------------------------------------------------------------------

/// A NaN-gradient fault mid-run must be absorbed: the run finishes with
/// finite parameters, reports the recovery, and — the key invariant —
/// reports exactly the same ε spend as an uninterrupted run, because the
/// faulted attempt was still charged to the budget.
#[test]
fn nan_fault_recovery_preserves_epsilon_spend() {
    let items = make_items(41);
    let cfg_clean = train_cfg(None);
    let cfg_faulted = train_cfg(Some(FaultPlan::at_step(
        fault_seed(),
        FaultPoint::NanGradient,
        9,
    )));

    let mut clean_model = small_model(42);
    let clean = train_dpgnn(&mut clean_model, &items, &cfg_clean).unwrap();

    let mut faulted_model = small_model(42);
    let faulted = train_dpgnn(&mut faulted_model, &items, &cfg_faulted).unwrap();

    // The fault fired, was recovered, and training still completed.
    assert!(
        !faulted.recoveries.is_empty(),
        "injected NaN gradient must be recorded as a recovery"
    );
    assert_eq!(faulted.recoveries[0].step, 9);
    assert!(faulted_model.params().iter().all(|p| !p.has_non_finite()));
    assert!(faulted.loss_trace.last().unwrap().is_finite());

    // Privacy invariant: attempted steps are what the accountant charges,
    // and recovery never un-charges an attempt.
    assert_eq!(clean.attempted_steps, cfg_clean.iters as u64);
    assert_eq!(faulted.attempted_steps, clean.attempted_steps);
    assert!(faulted.applied_steps < faulted.attempted_steps);

    let params = |steps: u64| PrivacyParams {
        n_g: 6,
        batch: 8,
        container: items.len() as u64,
        steps,
    };
    let eps_clean = best_epsilon(cfg_clean.sigma, 1e-3, &params(clean.attempted_steps));
    let eps_faulted = best_epsilon(cfg_faulted.sigma, 1e-3, &params(faulted.attempted_steps));
    assert!(eps_clean.is_finite() && eps_clean > 0.0);
    assert_eq!(
        eps_clean.to_bits(),
        eps_faulted.to_bits(),
        "a recovered run must report the same ε as an uninterrupted one"
    );
}

/// Random NaN faults at 20% rate (any seed) must still converge to a
/// finite model while charging every attempted step.
#[test]
fn random_nan_faults_are_absorbed_at_any_seed() {
    let items = make_items(43);
    let mut cfg = train_cfg(Some(FaultPlan::new(
        fault_seed(),
        &[FaultPoint::NanGradient, FaultPoint::EmptyBatch],
        0.2,
    )));
    cfg.max_recoveries = cfg.iters as u32; // generous budget: rate < 1
    let mut model = small_model(44);
    let report = train_dpgnn(&mut model, &items, &cfg).unwrap();
    assert_eq!(report.attempted_steps, cfg.iters as u64);
    assert_eq!(
        report.applied_steps + report.recoveries.len() as u64,
        report.attempted_steps
    );
    assert!(model.params().iter().all(|p| !p.has_non_finite()));
}

/// When every step faults and the recovery budget runs out, the trainer
/// must fail with the typed `Diverged` error — never a panic or a silent
/// NaN model.
#[test]
fn exhausted_recovery_budget_is_a_typed_error() {
    let items = make_items(45);
    let mut cfg = train_cfg(Some(FaultPlan::new(
        fault_seed(),
        &[FaultPoint::NanGradient],
        1.0,
    )));
    cfg.max_recoveries = 3;
    let mut model = small_model(46);
    let err = train_dpgnn(&mut model, &items, &cfg).unwrap_err();
    match err {
        PrivimError::Diverged { recoveries, .. } => assert_eq!(recoveries, 4),
        other => panic!("expected Diverged, got {other}"),
    }
    // The model is left at its last healthy checkpoint (here: the init).
    assert!(model.params().iter().all(|p| !p.has_non_finite()));
}

// ---------------------------------------------------------------------------
// Graceful degradation: degenerate graphs flow through the samplers as
// empty results or typed errors, never panics.
// ---------------------------------------------------------------------------

fn dual_cfg() -> DualStageConfig {
    DualStageConfig {
        stage1: freq_cfg(),
        shrink: 2,
        enable_bes: true,
    }
}

#[test]
fn empty_graph_degrades_gracefully() {
    let g = Graph::empty(0, false);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let sets = freq_sampling(&g, &mut [], &freq_cfg(), &mut rng).unwrap();
    assert!(sets.is_empty());
    let out = dual_stage_sampling(&g, &dual_cfg(), &mut rng).unwrap();
    assert_eq!(out.container.len(), 0);
    let sub = induced_subgraph(&g, &[]);
    assert_eq!(sub.graph.num_nodes(), 0);

    // An empty container is a typed error at the trainer boundary.
    let err = train_dpgnn(&mut small_model(2), &[], &train_cfg(None)).unwrap_err();
    assert!(matches!(err, PrivimError::EmptyInput(_)), "{err}");
}

#[test]
fn zero_edge_graph_degrades_gracefully() {
    // 50 isolated nodes: every walk is stuck at its start, so no subgraph
    // ever reaches the minimum size and the samplers return empty results.
    let g = Graph::empty(50, false);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut freq = vec![0u32; 50];
    let sets = freq_sampling(&g, &mut freq, &freq_cfg(), &mut rng).unwrap();
    assert!(sets.is_empty());
    assert!(freq.iter().all(|&f| f == 0));
    let out = dual_stage_sampling(&g, &dual_cfg(), &mut rng).unwrap();
    assert_eq!(out.container.len(), 0);
    assert_eq!(out.container.max_occurrence(), 0);
}

#[test]
fn single_node_graph_degrades_gracefully() {
    let g = Graph::empty(1, false);
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let mut freq = vec![0u32; 1];
    let sets = freq_sampling(&g, &mut freq, &freq_cfg(), &mut rng).unwrap();
    assert!(sets.is_empty());
    let out = dual_stage_sampling(&g, &dual_cfg(), &mut rng).unwrap();
    assert_eq!(out.container.len(), 0);
    let sub = induced_subgraph(&g, &[0]);
    assert_eq!(sub.graph.num_nodes(), 1);
    assert_eq!(sub.graph.num_edges(), 0);
}

#[test]
fn frequency_length_mismatch_is_a_typed_error() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let g = generators::erdos_renyi(30, 60, false, &mut rng);
    let mut freq = vec![0u32; 7]; // wrong length
    let err = freq_sampling(&g, &mut freq, &freq_cfg(), &mut rng).unwrap_err();
    assert!(matches!(err, PrivimError::InvalidInput(_)), "{err}");
    assert!(err.to_string().contains("length mismatch"), "{err}");
}

// ---------------------------------------------------------------------------
// Crash-safe writes: an injected I/O failure must leave any existing
// output intact (the fault fires before the tmp file is even created).
// ---------------------------------------------------------------------------

/// Child half of the I/O fault test: only meaningful when the parent
/// spawned us with `PRIVIM_FAULT=io_write_fail`; ignored in a normal run.
#[test]
#[ignore = "helper for injected_io_failure_leaves_existing_output_intact"]
fn io_fault_child() {
    let path = std::env::var("PRIVIM_FAULT_CHILD_PATH").expect("parent sets the target path");
    let err = privim::results::write_atomic(&path, "{\"overwritten\": true}").unwrap_err();
    assert!(matches!(err, PrivimError::InjectedFault { .. }), "{err}");
    assert!(err.is_transient(), "injected I/O faults model transient I/O");
}

/// `write_atomic` under an injected I/O fault: the write fails with a typed
/// transient error and the pre-existing file is byte-identical afterwards.
/// Runs in a child process because the fault plan is parsed from the
/// environment once per process.
#[test]
fn injected_io_failure_leaves_existing_output_intact() {
    let dir = std::env::temp_dir().join(format!("privim_io_fault_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let target = dir.join("results.json");
    let original = "{\"precious\": 1}";
    std::fs::write(&target, original).unwrap();

    let status = std::process::Command::new(std::env::current_exe().unwrap())
        .args(["--ignored", "--exact", "io_fault_child"])
        .env("PRIVIM_FAULT", "io_write_fail")
        .env("PRIVIM_FAULT_RATE", "1.0")
        .env("PRIVIM_FAULT_SEED", fault_seed().to_string())
        .env("PRIVIM_FAULT_CHILD_PATH", &target)
        .status()
        .expect("spawn child test process");
    assert!(status.success(), "child assertions failed");

    assert_eq!(
        std::fs::read_to_string(&target).unwrap(),
        original,
        "a failed atomic write must leave the original untouched"
    );
    // No half-written temporary may survive either.
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name() != "results.json")
        .collect();
    assert!(leftovers.is_empty(), "leftover files: {leftovers:?}");
    std::fs::remove_dir_all(&dir).unwrap();
}

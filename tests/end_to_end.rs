//! End-to-end integration: the full PrivIM pipeline (dataset generation →
//! subgraph sampling → privacy accounting → DP-SGD training → seed
//! selection → evaluation) across crates.

use privim::pipeline::{run_method, EvalSetup, Method, PipelineParams};
use privim_graph::datasets::Dataset;
use privim_rt::ChaCha8Rng;
use privim_rt::SeedableRng;

fn fast_params(n: usize) -> PipelineParams {
    let mut p = PipelineParams::paper_defaults(n);
    p.iters = 20;
    p.batch = 8;
    p.hidden = 12;
    p.layers = 2;
    p.subgraph_size = 12;
    p.walk_len = 80;
    p
}

#[test]
fn full_pipeline_on_lastfm_sample() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let g = Dataset::LastFm.generate_scaled(Dataset::LastFm.test_scale(), &mut rng);
    let params = fast_params(g.num_nodes());
    let setup = EvalSetup::with_params(&g, 15, params, &mut rng);

    let star = run_method(Method::PrivImStar { epsilon: 4.0 }, &setup, 1).unwrap();
    assert_eq!(star.seeds.len(), 15);
    assert!(star.spread >= 15.0);
    assert!(star.sigma > 0.0, "noise must be calibrated");
    assert!(star.container_size > 0);
    assert!(star.max_occurrence as u64 <= star.occurrence_bound);
    assert!(star.preprocess_secs >= 0.0 && star.train_secs > 0.0);
}

#[test]
fn all_methods_produce_valid_outputs() {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let g = Dataset::Bitcoin.generate_scaled(Dataset::Bitcoin.test_scale(), &mut rng);
    let params = fast_params(g.num_nodes());
    let setup = EvalSetup::with_params(&g, 10, params, &mut rng);

    for method in [
        Method::Celf,
        Method::Degree,
        Method::Random,
        Method::NonPrivate,
        Method::PrivIm { epsilon: 3.0 },
        Method::PrivImScs { epsilon: 3.0 },
        Method::PrivImStar { epsilon: 3.0 },
        Method::Egn { epsilon: 3.0 },
        Method::Hp { epsilon: 3.0 },
        Method::HpGrat { epsilon: 3.0 },
    ] {
        let out = run_method(method, &setup, 7).unwrap();
        assert_eq!(out.seeds.len(), 10, "{}", out.method);
        assert!(out.spread > 0.0, "{}", out.method);
        assert!(
            out.coverage_ratio > 0.0 && out.coverage_ratio <= 110.0,
            "{}: coverage {}",
            out.method,
            out.coverage_ratio
        );
        // seeds are valid, distinct node ids
        let mut s = out.seeds.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 10, "{}: duplicate seeds", out.method);
        assert!(s.iter().all(|&v| (v as usize) < g.num_nodes()));
    }
}

#[test]
fn directed_and_undirected_datasets_both_work() {
    for d in [Dataset::Email, Dataset::LastFm] {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = d.generate_scaled(d.test_scale(), &mut rng);
        let params = fast_params(g.num_nodes());
        let setup = EvalSetup::with_params(&g, 8, params, &mut rng);
        let out = run_method(Method::PrivImStar { epsilon: 4.0 }, &setup, 1).unwrap();
        assert_eq!(out.seeds.len(), 8, "{}", d.spec().name);
    }
}

#[test]
fn results_are_reproducible_for_same_replicate() {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let g = Dataset::LastFm.generate_scaled(Dataset::LastFm.test_scale(), &mut rng);
    let params = fast_params(g.num_nodes());
    let setup = EvalSetup::with_params(&g, 10, params, &mut rng);
    let a = run_method(Method::PrivImStar { epsilon: 2.0 }, &setup, 5).unwrap();
    let b = run_method(Method::PrivImStar { epsilon: 2.0 }, &setup, 5).unwrap();
    assert_eq!(a.seeds, b.seeds);
    assert_eq!(a.spread, b.spread);
    assert_eq!(a.sigma, b.sigma);
}

#[test]
fn friendster_partitioned_path_runs() {
    use privim_graph::partition::{bfs_partition, partition_subgraphs};
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let g = Dataset::Friendster.generate_scaled(Dataset::Friendster.test_scale(), &mut rng);
    let partition = bfs_partition(&g, 3);
    let subs = partition_subgraphs(&g, &partition);
    assert_eq!(subs.iter().map(|s| s.len()).sum::<usize>(), g.num_nodes());
    // train on one partition end-to-end
    let part = &subs[0];
    let params = fast_params(part.graph.num_nodes());
    let mut rng2 = ChaCha8Rng::seed_from_u64(6);
    let setup = EvalSetup::with_params(&part.graph, 5, params, &mut rng2);
    let out = run_method(Method::PrivImStar { epsilon: 4.0 }, &setup, 1).unwrap();
    assert_eq!(out.seeds.len(), 5);
}
